package cluster

import (
	"fmt"
	"math/rand"

	"silo/internal/core"
	"silo/internal/fault"
	"silo/internal/mem"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
	"silo/internal/workload"
)

// Config parameterizes one cluster run. The zero value of any field is
// replaced by the defaults below; a Config fully determines the run.
type Config struct {
	Seed   int64
	Design string // logging design name (harness registry; default "Silo")

	Nodes    int    // shard servers (default 4)
	VNodes   int    // virtual ring points per node (default 16)
	Requests int    // client requests to generate (default 2000)
	Keys     uint64 // keyspace size (default 4096)

	// Client load shape (see workload.KVLoadConfig).
	Tenants       int
	ReadPercent   int     // default 60
	ZipfS         float64 // default 1.07
	MeanGap       float64 // per-tenant mean inter-arrival, cycles (default 1200)
	DiurnalPeriod sim.Cycle
	DiurnalAmp    float64

	// Network/RPC cost model. All times are simulated cycles (2 GHz:
	// 2000 cycles = 1 µs).
	HopLatency  sim.Cycle // one-way hop (default 2000)
	HopJitter   sim.Cycle // uniform extra per hop (default 400)
	Timeout     sim.Cycle // client attempt timeout (default 300_000)
	Retries     int       // retries after the first attempt (default 3)
	BackoffBase sim.Cycle // retry backoff base, doubling + jitter (default 20_000)
	QueueCap    int       // per-node waiting-request bound (default 64)

	// ServiceOverhead is the fixed per-request cost outside the machine
	// execution — parse, dispatch, reply marshalling (default 600).
	ServiceOverhead sim.Cycle

	// Failure/recovery cost model.
	DetectDelay      sim.Cycle // router failure-detection lag (default 30_000)
	RebootDelay      sim.Cycle // power-on to replay start (default 50_000)
	RecoverPerRecord sim.Cycle // replay cost per scanned log record (default 300)
	RecoverPerWrite  sim.Cycle // replay cost per applied word (default 150)

	// Plan is the cluster fault schedule (nil = fault-free).
	Plan *fault.ClusterPlan

	DisableAudit bool
	Telemetry    *telemetry.Recorder

	// MaxEvents bounds the event loop against harness bugs (0 → scaled
	// to the request count). Exceeding it is an infra failure.
	MaxEvents int64
}

func (cfg *Config) defaults() {
	if cfg.Design == "" {
		cfg.Design = "Silo"
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 4
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = 16
	}
	if cfg.Requests < 1 {
		cfg.Requests = 2000
	}
	if cfg.Keys < 2 {
		cfg.Keys = 4096
	}
	if cfg.Tenants < 1 {
		cfg.Tenants = 3
	}
	if cfg.ReadPercent == 0 {
		cfg.ReadPercent = 60
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.07
	}
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1200
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 2000
	}
	if cfg.HopJitter == 0 {
		cfg.HopJitter = 400
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 300_000
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 20_000
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.ServiceOverhead == 0 {
		cfg.ServiceOverhead = 600
	}
	if cfg.DetectDelay == 0 {
		cfg.DetectDelay = 30_000
	}
	if cfg.RebootDelay == 0 {
		cfg.RebootDelay = 50_000
	}
	if cfg.RecoverPerRecord == 0 {
		cfg.RecoverPerRecord = 300
	}
	if cfg.RecoverPerWrite == 0 {
		cfg.RecoverPerWrite = 150
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 400*int64(cfg.Requests) + 100_000
	}
}

// LoadHorizon estimates when request generation ends — the window fault
// schedules should land inside.
func (cfg Config) LoadHorizon() sim.Cycle {
	c := cfg
	c.defaults()
	perTenant := float64(c.Requests) / float64(c.Tenants)
	return sim.Cycle(perTenant * c.MeanGap)
}

// CrashWindow is one node crash's availability record.
type CrashWindow struct {
	Node   int
	DownAt sim.Cycle
	// ServingAt is when the recovered node completed its first request
	// of the next incarnation; the window [DownAt, ServingAt] is the
	// per-crash unavailability window. When load ended before the node
	// served again, Closed is false and ServingAt clamps to FinalCycle.
	ServingAt sim.Cycle
	Closed    bool
	// CommitsElsewhere counts transactions committed by surviving nodes
	// inside the window — nonzero means the cluster kept serving.
	CommitsElsewhere int64
}

// Width returns the window's length in cycles.
func (w CrashWindow) Width() sim.Cycle { return w.ServingAt - w.DownAt }

// NodeStats summarizes one node's run.
type NodeStats struct {
	Served  int64
	Commits int64
	Crashes int
}

// Result is everything one cluster run produced.
type Result struct {
	Design string
	Nodes  int

	Generated int64 // client requests created
	Gets      int64
	Puts      int64
	Acked     int64 // requests acknowledged to the client
	AckedPuts int64
	Failed    int64 // requests exhausted their retry budget

	CommittedPuts int64 // Tx_end completions across all nodes (incl. unacked and duplicates)

	Timeouts  int64 // client attempt timeouts
	Sheds     int64 // requests refused by a full node queue
	FastFails int64 // router fast-fails to a node marked down
	Resets    int64 // queued requests bounced by a node crash
	Retries   int64 // attempts beyond the first
	Late      int64 // responses arriving after the request was resolved

	Latency stats.Histogram // acked-request client latency, cycles

	Crashes          int
	Windows          []CrashWindow
	Recovery         recovery.Report // summed over all node recoveries
	RecoveryRestarts int
	Torn             int64
	Dropped          int64

	Divergences []string // cluster-shadow + per-node golden-shadow verdicts

	PerNode    []NodeStats
	FinalCycle sim.Cycle

	Err   error
	Infra bool // Err is a harness/resource failure, not a verdict
}

// Available reports the fraction of generated requests that were acked.
func (r *Result) Available() float64 {
	if r.Generated == 0 {
		return 1
	}
	return float64(r.Acked) / float64(r.Generated)
}

// event kinds of the cluster DES.
type evKind uint8

const (
	evArrive    evKind = iota // a tenant's next request materializes at the router
	evRetry                   // a client re-sends after backoff
	evNodeRecv                // a request reaches its shard server
	evNodeDone                // the server finished executing a request
	evResp                    // a response (or reset) reaches the client
	evTimeout                 // a client attempt timer fires
	evCrash                   // a scheduled node power failure
	evRecovered               // a node finished reboot + replay
	evHealthDown              // the router's failure detector marks a node down
)

// response kinds carried in evResp's arg.
const (
	respOK = iota
	respShed
	respUnavail
	respReset
)

type request struct {
	id        int64
	tenant    int
	key       uint64
	read      bool
	val       uint64 // put payload (globally unique write sequence)
	node      int    // owner at last routing
	attempt   int
	firstSend sim.Cycle
	done      bool
	committed bool
	loaded    uint64
}

type event struct {
	at   sim.Cycle
	seq  int64 // tie-break: events at equal time fire in schedule order
	kind evKind
	node int // node id, tenant id (evArrive), or -1
	req  *request
	arg  int
}

// eventQueue is a binary min-heap over (at, seq).
type eventQueue []event

func (q eventQueue) lessAt(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.lessAt(i, p) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	*q = h[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.lessAt(l, small) {
			small = l
		}
		if r < n && q.lessAt(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Cluster is the running simulation state.
type Cluster struct {
	cfg        Config
	designOpts core.Options
	layout     mem.Layout
	ring       *Ring
	load       *workload.KVLoad
	nodes      []*node
	health     []bool // router's availability view
	shadow     *shadow
	tel        *telemetry.Recorder

	evq      eventQueue
	seq      int64
	rng      *rand.Rand // network + backoff jitter (deterministic use order)
	writeSeq uint64

	generated   int64
	outstanding int64
	tenantNext  []pendingArrival
	released    []bool // per node: current machine already released

	res Result
}

type pendingArrival struct {
	read bool
	key  uint64
}

// New builds a cluster simulation (nodes booted, faults and first
// arrivals scheduled) without running it; Run is New + Drive.
func New(cfg Config) (*Cluster, error) {
	cfg.defaults()
	c := &Cluster{
		cfg:    cfg,
		layout: mem.DefaultLayout(),
		ring:   NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed),
		shadow: newShadow(),
		tel:    cfg.Telemetry,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x636c7573746572)), // "cluster"
	}
	c.res.Design = cfg.Design
	c.res.Nodes = cfg.Nodes
	c.load = workload.NewKVLoad(workload.KVLoadConfig{
		Seed:          cfg.Seed ^ 0x6c6f6164, // "load"
		Tenants:       cfg.Tenants,
		Keys:          cfg.Keys,
		ZipfS:         cfg.ZipfS,
		ReadPercent:   cfg.ReadPercent,
		MeanGap:       cfg.MeanGap,
		DiurnalPeriod: cfg.DiurnalPeriod,
		DiurnalAmp:    cfg.DiurnalAmp,
	})

	// Per-node crash schedules from the plan.
	crashTimes := make([][]sim.Cycle, cfg.Nodes)
	if cfg.Plan != nil {
		for _, nc := range cfg.Plan.Crashes {
			if nc.Node < 0 || nc.Node >= cfg.Nodes {
				continue
			}
			crashTimes[nc.Node] = append(crashTimes[nc.Node], nc.At)
		}
	}

	c.health = make([]bool, cfg.Nodes)
	c.released = make([]bool, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		n := &node{id: id, crashTimes: crashTimes[id]}
		if len(n.crashTimes) > 0 {
			n.pendingCrash = n.crashTimes[0]
		}
		if err := c.bootNode(n); err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.health[id] = true
		c.tel.NodeState(id, 0, telemetry.NodeUp, 0)
		for _, at := range n.crashTimes {
			c.schedule(at, evCrash, id, nil, 0)
		}
	}

	// First arrival per tenant.
	c.tenantNext = make([]pendingArrival, cfg.Tenants)
	for t := 0; t < cfg.Tenants; t++ {
		at, read, key := c.load.Next(t, 0)
		c.tenantNext[t] = pendingArrival{read: read, key: key}
		c.schedule(at, evArrive, t, nil, 0)
	}
	return c, nil
}

// selfCrashNode is the node that arms the template plan's machine-level
// self-crash trigger (the first scheduled crash victim, else node 0).
func (c *Cluster) selfCrashNodeID() int {
	if c.cfg.Plan != nil && len(c.cfg.Plan.Crashes) > 0 {
		return c.cfg.Plan.Crashes[0].Node
	}
	return 0
}

// Run executes one cluster simulation to completion.
func Run(cfg Config) Result {
	c, err := New(cfg)
	if err != nil {
		return Result{Design: cfg.Design, Err: err}
	}
	return c.Drive()
}

// Drive pumps the event loop until the simulation drains (every request
// resolved, every recovery finished) and returns the result.
func (c *Cluster) Drive() Result {
	defer c.releaseAll()
	var processed int64
	for len(c.evq) > 0 && c.res.Err == nil {
		if processed++; processed > c.cfg.MaxEvents {
			c.res.Err = fmt.Errorf("cluster: event budget exceeded (%d events; livelock?)", c.cfg.MaxEvents)
			c.res.Infra = true
			break
		}
		ev := c.evq.pop()
		if ev.at > c.res.FinalCycle {
			c.res.FinalCycle = ev.at
		}
		c.dispatch(ev)
	}
	c.finalize()
	return c.res
}

func (c *Cluster) schedule(at sim.Cycle, kind evKind, node int, req *request, arg int) {
	c.seq++
	c.evq.push(event{at: at, seq: c.seq, kind: kind, node: node, req: req, arg: arg})
}

func (c *Cluster) fail(err error) {
	if c.res.Err == nil {
		c.res.Err = err
		c.res.Infra = true
	}
}

// hopDelay is one network hop: base latency plus uniform jitter.
func (c *Cluster) hopDelay() sim.Cycle {
	d := c.cfg.HopLatency
	if c.cfg.HopJitter > 0 {
		d += sim.Cycle(c.rng.Int63n(int64(c.cfg.HopJitter)))
	}
	return d
}

// backoff is the client retry delay before attempt `attempt` (>= 2):
// exponential in the attempt number with uniform jitter of half a base.
func (c *Cluster) backoff(attempt int) sim.Cycle {
	d := c.cfg.BackoffBase << (attempt - 2)
	if d > c.cfg.Timeout {
		d = c.cfg.Timeout // cap so late retries don't overshoot the horizon
	}
	return d + sim.Cycle(c.rng.Int63n(int64(c.cfg.BackoffBase/2+1)))
}

func (c *Cluster) dispatch(ev event) {
	switch ev.kind {
	case evArrive:
		c.onArrive(ev.node, ev.at)
	case evRetry:
		if ev.req.done {
			return // resolved (a late ack) before the retry fired
		}
		c.route(ev.req, ev.at)
	case evNodeRecv:
		c.onNodeRecv(c.nodes[ev.node], ev.req, ev.arg, ev.at)
	case evNodeDone:
		c.onNodeDone(c.nodes[ev.node], ev.req, ev.arg, ev.at)
	case evResp:
		c.onResp(ev.req, ev.arg, ev.node, ev.at)
	case evTimeout:
		if ev.req.done || ev.arg != ev.req.attempt {
			return
		}
		c.res.Timeouts++
		c.retryOrFail(ev.req, ev.at)
	case evCrash:
		n := c.nodes[ev.node]
		if n.state == nodeDown {
			return // double strike while already down
		}
		c.crashNode(n, ev.at)
	case evRecovered:
		c.onRecovered(c.nodes[ev.node], ev.at)
	case evHealthDown:
		n := c.nodes[ev.node]
		if n.state == nodeDown && n.crashes == ev.arg {
			c.health[ev.node] = false
		}
	}
}

// onArrive materializes tenant t's pre-drawn request and draws the next.
func (c *Cluster) onArrive(t int, now sim.Cycle) {
	if c.generated >= int64(c.cfg.Requests) {
		return
	}
	pa := c.tenantNext[t]
	c.generated++
	c.res.Generated++
	req := &request{
		id:        c.generated,
		tenant:    t,
		key:       pa.key,
		read:      pa.read,
		attempt:   1,
		firstSend: now,
	}
	if req.read {
		c.res.Gets++
	} else {
		c.writeSeq++
		req.val = c.writeSeq
		c.res.Puts++
	}
	c.outstanding++
	c.route(req, now)
	if c.generated < int64(c.cfg.Requests) {
		at, read, key := c.load.Next(t, now)
		c.tenantNext[t] = pendingArrival{read: read, key: key}
		c.schedule(at, evArrive, t, nil, 0)
	}
}

// route sends one attempt toward the key's owner, or fast-fails if the
// router believes the owner is down.
func (c *Cluster) route(req *request, now sim.Cycle) {
	nodeID := c.ring.Owner(req.key)
	req.node = nodeID
	down := !c.health[nodeID]
	c.tel.Route(nodeID, now, req.key, req.attempt, down)
	if down {
		c.res.FastFails++
		c.schedule(now+c.hopDelay(), evResp, nodeID, req, respUnavail)
		return
	}
	c.schedule(now+c.hopDelay(), evNodeRecv, nodeID, req, req.attempt)
	c.schedule(now+c.cfg.Timeout, evTimeout, nodeID, req, req.attempt)
}

// onNodeRecv is a request arriving at its shard server.
func (c *Cluster) onNodeRecv(n *node, req *request, attempt int, now sim.Cycle) {
	if req.done || attempt != req.attempt {
		return // superseded attempt; the packet evaporates
	}
	if n.state != nodeUp {
		return // blackholed: down or wedged nodes don't answer; the client times out
	}
	if len(n.queue) >= c.cfg.QueueCap {
		c.res.Sheds++
		c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, true)
		c.schedule(now+c.hopDelay(), evResp, n.id, req, respShed)
		return
	}
	n.queue = append(n.queue, req)
	c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, false)
	if !n.busy {
		c.startService(n, now)
	}
}

// startService pops the queue head and executes it on the node machine.
func (c *Cluster) startService(n *node, now sim.Cycle) {
	if n.state != nodeUp || n.busy || len(n.queue) == 0 {
		return
	}
	if n.pendingCrash > 0 && now >= n.pendingCrash {
		// The power failure event is due this very cycle; don't start
		// work the crash teardown would have to unwind.
		n.state = nodeWedged
		return
	}
	req := n.queue[0]
	copy(n.queue, n.queue[1:])
	n.queue = n.queue[:len(n.queue)-1]
	n.busy = true
	n.inflight = req
	c.tel.NodeQueue(n.id, now, len(n.queue), c.cfg.QueueCap, false)

	sr, err := c.runService(n, req, now)
	if err != nil {
		c.fail(err)
		return
	}
	if sr.committed {
		n.commits++
		c.res.CommittedPuts++
		req.committed = true
		c.shadow.commitPut(req.key, req.val)
		c.countCommitInWindows(n.id)
	}
	if req.read && !sr.crashed {
		req.loaded = sr.loaded
		c.shadow.checkGet(req.key, sr.loaded, n.id, now)
	}
	if sr.crashed {
		// The machine lost power mid-request. If the cluster-scheduled
		// crash fired, its evCrash event performs the teardown at the
		// exact scheduled time; a machine-level self-trigger instead
		// gets a teardown event at the machine's crash cycle.
		tc := now + sr.dur - c.cfg.ServiceOverhead
		n.state = nodeWedged
		if !(n.pendingCrash > 0 && tc >= n.pendingCrash) {
			c.schedule(tc, evCrash, n.id, nil, 0)
		}
		return
	}
	done := now + sr.dur
	if n.pendingCrash > 0 && done >= n.pendingCrash {
		// The request committed, but power fails before the response
		// leaves the node: committed-but-unacked. The node wedges until
		// its crash event; the client sees a timeout.
		n.state = nodeWedged
		return
	}
	c.schedule(done, evNodeDone, n.id, req, n.incarn)
}

// onNodeDone is the server finishing a request: send the response and
// pull the next queued request.
func (c *Cluster) onNodeDone(n *node, req *request, incarn int, now sim.Cycle) {
	if n.incarn != incarn || n.state != nodeUp {
		return // stale completion from a pre-crash incarnation
	}
	n.busy = false
	n.inflight = nil
	n.served++
	if n.windowOpen {
		w := &c.res.Windows[n.windowIdx]
		w.ServingAt = now
		w.Closed = true
		n.windowOpen = false
	}
	c.schedule(now+c.hopDelay(), evResp, n.id, req, respOK)
	if len(n.queue) > 0 {
		c.startService(n, now)
	}
}

// onResp is a response reaching the client.
func (c *Cluster) onResp(req *request, kind, nodeID int, now sim.Cycle) {
	if req.done {
		c.res.Late++
		return
	}
	switch kind {
	case respOK:
		req.done = true
		c.outstanding--
		c.res.Acked++
		c.res.Latency.Observe(int64(now - req.firstSend))
		if !req.read {
			c.res.AckedPuts++
			c.shadow.ackPut(req.key, req.val, nodeID, now)
		}
	case respShed, respUnavail, respReset:
		if kind == respReset {
			c.res.Resets++
		}
		c.retryOrFail(req, now)
	}
}

// retryOrFail re-sends with backoff, or gives up once the retry budget
// is spent.
func (c *Cluster) retryOrFail(req *request, now sim.Cycle) {
	if req.attempt > c.cfg.Retries {
		req.done = true
		c.outstanding--
		c.res.Failed++
		return
	}
	req.attempt++
	c.res.Retries++
	c.schedule(now+c.backoff(req.attempt), evRetry, -1, req, req.attempt)
}

// onRecovered brings the next incarnation of a node into service.
func (c *Cluster) onRecovered(n *node, now sim.Cycle) {
	n.incarn++
	if err := c.bootNode(n); err != nil {
		c.fail(err)
		return
	}
	c.released[n.id] = false
	n.state = nodeUp
	for n.nextCrash < len(n.crashTimes) && n.crashTimes[n.nextCrash] <= now {
		n.nextCrash++
	}
	n.pendingCrash = 0
	if n.nextCrash < len(n.crashTimes) {
		n.pendingCrash = n.crashTimes[n.nextCrash]
	}
	c.health[n.id] = true
	c.tel.NodeState(n.id, now, telemetry.NodeUp, n.crashes)
}

// countCommitInWindows credits a commit on nodeID to every open crash
// window of *other* nodes — the "surviving nodes keep serving" proof.
func (c *Cluster) countCommitInWindows(nodeID int) {
	for i := range c.res.Windows {
		w := &c.res.Windows[i]
		if !w.Closed && w.Node != nodeID {
			w.CommitsElsewhere++
		}
	}
}

// finalize clamps open windows, snapshots per-node stats, and copies
// the shadow verdicts into the result.
func (c *Cluster) finalize() {
	for i := range c.res.Windows {
		if !c.res.Windows[i].Closed {
			c.res.Windows[i].ServingAt = c.res.FinalCycle
		}
	}
	for _, n := range c.nodes {
		c.res.PerNode = append(c.res.PerNode, NodeStats{
			Served: n.served, Commits: n.commits, Crashes: n.crashes,
		})
	}
	c.res.Divergences = c.shadow.divergences
	if c.res.Err == nil && c.outstanding != 0 {
		// The event queue drained with live requests — a harness bug.
		c.res.Err = fmt.Errorf("cluster: %d requests unresolved at drain", c.outstanding)
		c.res.Infra = true
	}
}

// releaseAll returns every live machine's pooled resources.
func (c *Cluster) releaseAll() {
	for _, n := range c.nodes {
		if n.m != nil && !c.released[n.id] {
			n.m.Release()
			c.released[n.id] = true
		}
	}
}
