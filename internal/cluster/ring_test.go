package cluster

import (
	"testing"
)

// TestRingOwnersNProperties checks the replica-set contract across ring
// shapes: element 0 is the primary, members are distinct valid nodes,
// the count is min(n, nodes), clamping works, and a larger request is a
// strict prefix-extension of a smaller one (promotion order is stable).
func TestRingOwnersNProperties(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8, 13} {
		for _, vnodes := range []int{1, 3, 16} {
			r := NewRing(nodes, vnodes, 42)
			for key := uint64(0); key < 512; key++ {
				prev := []int{}
				for n := 0; n <= nodes+2; n++ {
					owners := r.OwnersN(key, n)
					wantLen := n
					if wantLen < 1 {
						wantLen = 1
					}
					if wantLen > nodes {
						wantLen = nodes
					}
					if len(owners) != wantLen {
						t.Fatalf("nodes=%d vnodes=%d key=%d n=%d: len=%d want %d", nodes, vnodes, key, n, len(owners), wantLen)
					}
					if owners[0] != r.Owner(key) {
						t.Fatalf("nodes=%d key=%d: primary %d != Owner %d", nodes, key, owners[0], r.Owner(key))
					}
					seen := map[int]bool{}
					for _, o := range owners {
						if o < 0 || o >= nodes {
							t.Fatalf("nodes=%d key=%d n=%d: owner %d out of range", nodes, key, n, o)
						}
						if seen[o] {
							t.Fatalf("nodes=%d key=%d n=%d: duplicate owner %d in %v", nodes, key, n, o, owners)
						}
						seen[o] = true
					}
					for i := 0; i < len(prev) && i < len(owners); i++ {
						if prev[i] != owners[i] {
							t.Fatalf("nodes=%d key=%d: OwnersN(%d)=%v is not a prefix of OwnersN(%d)=%v",
								nodes, key, n-1, prev, n, owners)
						}
					}
					prev = owners
				}
			}
		}
	}
}

// TestRingOwnersNFullSet checks that asking for the whole ring returns a
// permutation of all nodes — the clockwise walk reaches everyone.
func TestRingOwnersNFullSet(t *testing.T) {
	for _, nodes := range []int{1, 4, 7} {
		r := NewRing(nodes, 16, 7)
		for key := uint64(0); key < 256; key++ {
			owners := r.OwnersN(key, nodes)
			if len(owners) != nodes {
				t.Fatalf("nodes=%d key=%d: full set has %d members", nodes, key, len(owners))
			}
			seen := make([]bool, nodes)
			for _, o := range owners {
				seen[o] = true
			}
			for n, ok := range seen {
				if !ok {
					t.Fatalf("nodes=%d key=%d: node %d missing from full replica set %v", nodes, key, n, owners)
				}
			}
		}
	}
}

// TestRingNodeRemovalMovesOnlyAffectedKeys checks the consistent-hash
// promise at replica scope: dropping the last node from the ring leaves
// every key whose replica set avoided that node with the same replica
// set. (Only keys that used the removed node may move.)
func TestRingNodeRemovalMovesOnlyAffectedKeys(t *testing.T) {
	const nodes, vnodes, R = 6, 16, 3
	// NewRing hashes (seed, node, vnode), so a ring of nodes-1 shares
	// the surviving nodes' points exactly: removing a node removes only
	// its own points.
	big := NewRing(nodes, vnodes, 99)
	small := NewRing(nodes-1, vnodes, 99)
	moved, kept := 0, 0
	for key := uint64(0); key < 4096; key++ {
		was := big.OwnersN(key, R)
		uses := false
		for _, o := range was {
			if o == nodes-1 {
				uses = true
			}
		}
		now := small.OwnersN(key, R)
		if uses {
			moved++
			continue // allowed to change arbitrarily
		}
		kept++
		if len(was) != len(now) {
			t.Fatalf("key %d: replica set resized %v -> %v without using the removed node", key, was, now)
		}
		for i := range was {
			if was[i] != now[i] {
				t.Fatalf("key %d: replica set moved %v -> %v without using the removed node", key, was, now)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d (test not exercising both classes)", moved, kept)
	}
}

// FuzzRingOwners fuzzes the replica-set walk over arbitrary ring shapes
// and keys, checking the invariants that the deterministic tests pin on
// chosen shapes: correct length, distinct in-range members, primary
// agreement, and clamping.
func FuzzRingOwners(f *testing.F) {
	f.Add(int64(1), 4, 16, uint64(0), 3)
	f.Add(int64(42), 1, 1, uint64(7), 1)
	f.Add(int64(-9), 8, 3, uint64(1<<63), 8)
	f.Add(int64(7), 70, 2, uint64(12345), 70) // past the 64-node bitset
	f.Add(int64(0), 3, 5, ^uint64(0), 9)      // n > nodes: clamp
	f.Add(int64(13), 2, 7, uint64(99), 0)     // n < 1: clamp
	f.Fuzz(func(t *testing.T, seed int64, nodes, vnodes int, key uint64, n int) {
		if nodes < 0 || nodes > 96 || vnodes < 0 || vnodes > 32 {
			t.Skip("ring too large for the fuzz budget")
		}
		r := NewRing(nodes, vnodes, seed)
		owners := r.OwnersN(key, n)
		wantLen := n
		if wantLen < 1 {
			wantLen = 1
		}
		if wantLen > r.Nodes() {
			wantLen = r.Nodes()
		}
		if len(owners) != wantLen {
			t.Fatalf("len=%d want %d (nodes=%d n=%d)", len(owners), wantLen, r.Nodes(), n)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("primary %d != Owner %d", owners[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if o < 0 || o >= r.Nodes() {
				t.Fatalf("owner %d out of range [0,%d)", o, r.Nodes())
			}
			if seen[o] {
				t.Fatalf("duplicate owner %d in %v", o, owners)
			}
			seen[o] = true
		}
	})
}
