package cluster

// Primary→replica replication and deterministic failover.
//
// With Replicas = R > 1 the ring assigns each key an ordered replica
// set of R distinct nodes (Ring.OwnersN); element 0 is the primary.
// The router sends every request to the first member it believes is
// both alive and promoted-to; a write commits on that member's machine
// and then replicates to the other live members over the same network
// DES that carries client traffic. Each committed write carries a
// version from a global monotone counter (assigned at primary commit,
// so per-key version order is per-key commit order) and the replica
// stores value and version durably in one transaction — which is what
// entitles the simulator to keep the per-node kv/ver maps across
// crashes: after every recovery the maps are verified word-for-word
// against the replayed PM media.
//
// Failover is detection-bound: the failure detector marks a node down
// DetectDelay after its crash, and PromoteDelay later the router
// promotes the next live replica (failedOver), after which reads and
// writes for the dead node's keys flow to the survivors. The rebooted
// node does not rejoin immediately: it enters nodeResync, pulls a
// deterministic catch-up diff from the most up-to-date live replica of
// each key (applied through its machine as durable transactions, so a
// crash during catch-up tears at a transaction boundary), absorbs
// forwarded writes for the keys it hosts while catching up, and only
// re-enters the ring (evResynced) once the billed resync window —
// ResyncBase + ResyncPerEntry per diff entry + the machine apply time —
// has elapsed.
//
// Replication modes:
//
//   - ReplSync: the client ack is withheld until every live replica of
//     the key (including ones mid-resync — they apply forwarded writes
//     in order) has durably applied the write. An acked write must
//     therefore survive any crash that leaves at least one replica
//     alive; the shadow enforces exactly that at every crash and any
//     violation is a divergence.
//   - ReplAsync: the ack follows the primary commit immediately and
//     replicas apply AsyncDelay later. A primary crash can strand acked
//     writes that no live replica has applied yet; the shadow counts
//     them (Result.AckedLost) instead of failing the run — bounded
//     async reports its loss window, it does not hide it.

import (
	"fmt"
	"sort"
	"strings"

	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// ReplicationMode selects how a committed Put reaches the replicas
// before (sync) or after (bounded-async) the client ack.
type ReplicationMode uint8

const (
	ReplSync ReplicationMode = iota
	ReplAsync
)

func (m ReplicationMode) String() string {
	if m == ReplAsync {
		return "async"
	}
	return "sync"
}

// ParseReplicationMode is the inverse of ReplicationMode.String.
func ParseReplicationMode(s string) (ReplicationMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "sync":
		return ReplSync, nil
	case "async":
		return ReplAsync, nil
	}
	return ReplSync, fmt.Errorf("cluster: unknown replication mode %q (want sync or async)", s)
}

// replMsg is one replication message: a committed (key, val, ver)
// triple in flight from the committing member to one replica.
type replMsg struct {
	key, val, ver uint64
	from          int // committing member
	fromIncarn    int
	sentAt        sim.Cycle
	batch         *replBatch // sync-mode ack bookkeeping; nil in async mode
	committed     bool       // the replica's apply transaction committed
}

// replBatch tracks one sync-mode commit's outstanding replica acks; the
// deferred client respOK fires when pending reaches zero, relayed by
// the committing member (so it dies with it — the client then times out
// and retries against the promoted replica).
type replBatch struct {
	req          *request
	pending      int
	origin       int
	originIncarn int
	ver          uint64
}

// verAddr maps a key to the PM word holding its replication version,
// in a flat region directly above the value region (the data region is
// ~16 GB; both key regions together are at most 64 KB).
func (c *Cluster) verAddr(key uint64) mem.Addr {
	return c.keyAddr(c.cfg.Keys + key)
}

// groupOf returns the key's ordered replica set, cached per key (the
// keyspace is small and ring placement is fixed for the run).
func (c *Cluster) groupOf(key uint64) []int {
	g := c.groups[key]
	if g == nil {
		g = c.ring.OwnersN(key, c.cfg.Replicas)
		c.groups[key] = g
	}
	return g
}

func (c *Cluster) inGroup(key uint64, nodeID int) bool {
	for _, m := range c.groupOf(key) {
		if m == nodeID {
			return true
		}
	}
	return false
}

// linkSend FIFO-orders replication traffic per (from, to) link: a later
// send never arrives before an earlier one, so a replica applies one
// member's writes in commit order without reordering logic.
func (c *Cluster) linkSend(from, to int, at sim.Cycle) sim.Cycle {
	idx := from*c.cfg.Nodes + to
	if at <= c.linkNext[idx] {
		at = c.linkNext[idx] + 1
	}
	c.linkNext[idx] = at
	return at
}

// replicate fans a committed Put out to the key's other live replicas
// (called from onNodeDone on the committing member, cluster time now).
// Sync mode defers the client ack to the last replica ack; async mode
// acks immediately and ships the replication AsyncDelay later.
func (c *Cluster) replicate(n *node, req *request, ver uint64, now sim.Cycle) {
	sync := c.cfg.Replication == ReplSync
	var batch *replBatch
	if sync {
		batch = &replBatch{req: req, origin: n.id, originIncarn: n.incarn, ver: ver}
	}
	for _, m := range c.groupOf(req.key) {
		if m == n.id {
			continue
		}
		t := c.nodes[m]
		if t.state != nodeUp && t.state != nodeResync {
			continue // down or wedged: this write reaches it via resync
		}
		delay := c.hopDelay()
		if !sync {
			delay += c.cfg.AsyncDelay
		}
		msg := &replMsg{
			key: req.key, val: req.val, ver: ver,
			from: n.id, fromIncarn: n.incarn, sentAt: now, batch: batch,
		}
		c.res.ReplSent++
		c.scheduleEv(event{at: c.linkSend(n.id, m, now+delay), kind: evReplRecv, node: m, repl: msg})
		if sync {
			batch.pending++
		}
	}
	if !sync || batch.pending == 0 {
		c.scheduleEv(event{at: now + c.hopDelay(), kind: evResp, node: n.id, req: req, arg: respOK, ver: ver})
	}
}

// onReplRecv is a replication message reaching a replica.
func (c *Cluster) onReplRecv(n *node, msg *replMsg, now sim.Cycle) {
	if n.state != nodeUp && n.state != nodeResync {
		c.res.ReplDropped++
		return
	}
	n.replQueue = append(n.replQueue, msg)
	if !n.busy {
		c.startService(n, now)
	}
}

// ackRepl sends the replica's apply ack back toward the committing
// member (sync mode only; async sends no acks).
func (c *Cluster) ackRepl(n *node, msg *replMsg, now sim.Cycle) {
	if msg.batch == nil {
		return
	}
	c.scheduleEv(event{at: now + c.hopDelay(), kind: evReplAck, node: n.id, repl: msg})
}

// onReplAck is a replica ack reaching the committing member: when the
// last one lands, the deferred client respOK leaves the member. Acks to
// a member that crashed (or rebooted) since the commit are dropped —
// the client times out and retries against the promoted replica.
func (c *Cluster) onReplAck(msg *replMsg, now sim.Cycle) {
	b := msg.batch
	o := c.nodes[b.origin]
	if o.state != nodeUp || o.incarn != b.originIncarn || b.req.done {
		return
	}
	if b.pending--; b.pending == 0 {
		c.scheduleEv(event{at: now + c.hopDelay(), kind: evResp, node: b.origin, req: b.req, arg: respOK, ver: b.ver})
	}
}

// onReplDone is the replica's machine finishing an apply transaction:
// ack it (sync), record the replication lag, and pull the next queued
// work item.
func (c *Cluster) onReplDone(n *node, msg *replMsg, incarn int, now sim.Cycle) {
	if n.incarn != incarn || (n.state != nodeUp && n.state != nodeResync) {
		return // the replica crashed between apply and completion
	}
	n.busy = false
	if msg.committed {
		c.ackRepl(n, msg, now)
		c.tel.ReplLag(n.id, now, int64(now-msg.sentAt), len(n.replQueue))
	}
	if len(n.replQueue) > 0 || len(n.queue) > 0 {
		c.startService(n, now)
	}
}

// onPromote is the router completing failover for a detected-down node:
// from here on, requests for its keys walk past it to the next live
// replica. Skipped if the node already made it back.
func (c *Cluster) onPromote(n *node, crashes int, now sim.Cycle) {
	if n.crashes != crashes || n.state == nodeUp {
		return
	}
	if !c.failedOver[n.id] {
		c.failedOver[n.id] = true
		c.res.Promotions++
	}
	if n.windowOpen {
		w := &c.res.Windows[n.windowIdx]
		if w.PromotedAt == 0 {
			w.PromotedAt = now
		}
	}
}

// onResynced re-admits a caught-up node to the ring.
func (c *Cluster) onResynced(n *node, incarn int, now sim.Cycle) {
	if n.incarn != incarn || n.state != nodeResync {
		return // re-crashed during catch-up; the next recovery resyncs again
	}
	n.state = nodeUp
	c.health[n.id] = true
	c.failedOver[n.id] = false
	if n.windowOpen {
		w := &c.res.Windows[n.windowIdx]
		w.ResyncEnd = now
	}
	c.tel.NodeState(n.id, now, telemetry.NodeUp, n.crashes)
	if !n.busy {
		c.startService(n, now)
	}
}

// resyncNode computes and applies the rebooted node's catch-up diff —
// for every key it hosts, the (val, ver) pair of the most up-to-date
// live replica if that is ahead of the node's own recovered version —
// and returns the billed resync window. The diff applies through the
// node's machine as one durable transaction per entry, so a crash
// scheduled inside the window tears the catch-up at a transaction
// boundary and the next recovery starts from the committed prefix;
// crashed reports that the machine lost power mid-batch (the caller
// wedges the node until its evCrash teardown fires).
func (c *Cluster) resyncNode(n *node, now sim.Cycle) (cost sim.Cycle, crashed bool, err error) {
	type entry struct{ key, val, ver uint64 }
	seen := make(map[uint64]bool)
	var keys []uint64
	for _, p := range c.nodes {
		if p == n || (p.state != nodeUp && p.state != nodeResync) {
			continue
		}
		for k := range p.ver {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var entries []entry
	for _, k := range keys {
		if !c.inGroup(k, n.id) {
			continue
		}
		var src *node
		for _, m := range c.groupOf(k) {
			if m == n.id {
				continue
			}
			t := c.nodes[m]
			if t.state != nodeUp && t.state != nodeResync {
				continue
			}
			if src == nil || t.ver[k] > src.ver[k] {
				src = t
			}
		}
		if src == nil || src.ver[k] <= n.ver[k] {
			continue
		}
		entries = append(entries, entry{key: k, val: src.kv[k], ver: src.ver[k]})
	}

	cost = c.cfg.ResyncBase + c.cfg.ResyncPerEntry*sim.Cycle(len(entries))
	if len(entries) == 0 {
		return cost, false, nil
	}

	st := &reqStream{ops: make([]sim.Op, 0, len(entries)*4)}
	for _, e := range entries {
		st.ops = append(st.ops,
			sim.Op{Kind: sim.OpTxBegin},
			sim.Op{Kind: sim.OpStore, Addr: c.keyAddr(e.key), Data: mem.Word(e.val)},
			sim.Op{Kind: sim.OpStore, Addr: c.verAddr(e.key), Data: mem.Word(e.ver)},
			sim.Op{Kind: sim.OpTxEnd},
		)
	}
	t0 := n.eng.CoreTime(0)
	if n.pendingCrash > 0 && n.pendingCrash > now {
		n.eng.ScheduleCrash(t0+(n.pendingCrash-now), n.m.InjectCrash)
	}
	commitsBefore := n.m.Commits()
	n.eng.Bind([]sim.OpStream{st})
	budget := serviceStepBudget * int64(len(entries)+1)
	for steps := int64(0); n.eng.Step(); steps++ {
		if steps > budget {
			return 0, false, fmt.Errorf("cluster: node %d wedged in resync (%d entries, step budget)", n.id, len(entries))
		}
	}
	applied := int(n.m.Commits() - commitsBefore)
	if applied > len(entries) {
		applied = len(entries)
	}
	for i := 0; i < applied; i++ {
		n.kv[entries[i].key] = entries[i].val
		n.ver[entries[i].key] = entries[i].ver
	}
	n.commits += int64(applied)
	c.res.ResyncEntries += int64(applied)
	return cost + (n.eng.CoreTime(0) - t0), st.crashed, nil
}

// checkAckedSurvival enforces, at node n's crash, the replication
// durability contract: for every key n hosts whose acked version is v,
// some live replica must have applied ≥ v. Sync mode promised exactly
// that (the ack waited for every live replica), so a violation is a
// divergence; async mode counts it as an acked-but-lost write. When the
// whole group is down, durability falls back to per-node PM recovery
// (checked separately by checkReplRecovered) and the key is skipped.
func (c *Cluster) checkAckedSurvival(n *node, now sim.Cycle) {
	keys := make([]uint64, 0, len(c.shadow.ackedVer))
	for k := range c.shadow.ackedVer {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		av := c.shadow.ackedVer[k]
		if av == 0 || !c.inGroup(k, n.id) {
			continue
		}
		var best uint64
		live := false
		for _, m := range c.groupOf(k) {
			t := c.nodes[m]
			if m == n.id || (t.state != nodeUp && t.state != nodeResync) {
				continue
			}
			live = true
			if t.ver[k] > best {
				best = t.ver[k]
			}
		}
		if !live || best >= av {
			continue
		}
		if c.cfg.Replication == ReplSync {
			c.shadow.diverge("node %d crash: acked write key=%d ver=%d absent from every live replica (best=%d, now=%d)",
				n.id, k, av, best, now)
		} else {
			c.shadow.ackedLost++
		}
		c.shadow.ackedVer[k] = best // settled: don't recount at the next crash
	}
}

// checkReplRecovered verifies the crashed node's replayed PM media
// word-for-word against its applied kv/ver maps — every committed value
// and version word restored, every uncommitted apply rolled back. This
// is what entitles the node to keep those maps across the crash.
func (c *Cluster) checkReplRecovered(n *node, now sim.Cycle) {
	keys := make([]uint64, 0, len(n.kv))
	for k := range n.kv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if got := uint64(n.dev.PeekWord(c.keyAddr(k))); got != n.kv[k] {
			c.shadow.diverge("node %d: recovered key=%d = %d want %d (now=%d)", n.id, k, got, n.kv[k], now)
		}
		if got := uint64(n.dev.PeekWord(c.verAddr(k))); got != n.ver[k] {
			c.shadow.diverge("node %d: recovered key=%d version word = %d want %d (now=%d)", n.id, k, got, n.ver[k], now)
		}
	}
}
