package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"silo/internal/sim"
)

// NodeCrash schedules one node's power failure at a cluster-time cycle.
type NodeCrash struct {
	Node int
	At   sim.Cycle
}

// ClusterPlan extends a Plan to cluster scope: a schedule of node power
// failures in cluster time, plus a per-node crash template shaping what
// each crash looks like (battery flush budget, tearing, strict draw,
// media bit flips, mid-recovery re-crashes). Like Plan it is pure data:
// a failing cluster schedule replays from its parameters alone.
//
// The template's Trigger is a node-local self-crash: at most one node
// (the first in the schedule, or node 0 when the schedule is empty)
// arms it inside its machine, so op-count and commit-window triggers
// keep firing at machine scope while the schedule fires at cluster
// scope. TriggerCycle is remapped to TriggerOp by the consumer — node
// machine clocks restart at every reboot, so a node-local cycle trigger
// is ambiguous across incarnations.
type ClusterPlan struct {
	Crashes []NodeCrash
	Node    Plan
}

// Active reports whether any node crash is scheduled or the template
// self-crashes.
func (p *ClusterPlan) Active() bool {
	return p != nil && (len(p.Crashes) > 0 || p.Node.Active())
}

// String renders the plan as the form ParseClusterPlan accepts:
// "storm=<node>@<cycle>+... ;node=<plan>" with an empty schedule
// rendered as "storm=none".
func (p ClusterPlan) String() string {
	var b strings.Builder
	b.WriteString("storm=")
	if len(p.Crashes) == 0 {
		b.WriteString("none")
	} else {
		for i, c := range p.Crashes {
			if i > 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d@%d", c.Node, c.At)
		}
	}
	b.WriteString(";node=")
	b.WriteString(p.Node.String())
	return b.String()
}

// ParseClusterPlan is the inverse of ClusterPlan.String.
func ParseClusterPlan(s string) (ClusterPlan, error) {
	var p ClusterPlan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("fault: bad cluster plan field %q", part)
		}
		switch k {
		case "storm":
			if v == "none" {
				continue
			}
			for _, cs := range strings.Split(v, "+") {
				ns, as, ok := strings.Cut(cs, "@")
				if !ok {
					return p, fmt.Errorf("fault: bad node crash %q", cs)
				}
				node, err := strconv.Atoi(ns)
				if err != nil {
					return p, fmt.Errorf("fault: bad node crash %q: %v", cs, err)
				}
				at, err := strconv.ParseInt(as, 10, 64)
				if err != nil {
					return p, fmt.Errorf("fault: bad node crash %q: %v", cs, err)
				}
				p.Crashes = append(p.Crashes, NodeCrash{Node: node, At: sim.Cycle(at)})
			}
		case "node":
			// The node template itself is a comma-separated Plan, so it
			// must come after any '=' cut on the ';' part only.
			np, err := ParsePlan(v)
			if err != nil {
				return p, err
			}
			p.Node = np
		default:
			return p, fmt.Errorf("fault: unknown cluster plan field %q", k)
		}
	}
	sort.SliceStable(p.Crashes, func(i, j int) bool { return p.Crashes[i].At < p.Crashes[j].At })
	return p, nil
}

// RandomCluster derives a cluster crash schedule from rng over a load
// horizon of roughly `horizon` cycles across `nodes` nodes, carrying
// `node` as the per-crash template. Shapes produced:
//
//   - single node crash (common case),
//   - rolling crashes: distinct nodes failing at spread-out times,
//   - crash storm: two nodes failing within one detection window,
//   - repeat offender: the same node failing twice (the second strike
//     lands after a plausible recovery, or is dropped at run time if
//     the node is still down),
//   - double fault: a key's primary and a replica both down before the
//     failure detector (default 30k-cycle lag) can react to the first,
//   - catch-up strike: the victim is hit again right as its reboot and
//     catch-up resync should be in flight, so the second strike lands
//     on a node that is replaying or resyncing rather than serving.
func RandomCluster(rng *rand.Rand, nodes int, horizon sim.Cycle, node Plan) ClusterPlan {
	if nodes < 1 {
		nodes = 1
	}
	if horizon < 1000 {
		horizon = 1000
	}
	p := ClusterPlan{Node: node}
	// Crash times land in the middle 10%–80% of the horizon so there is
	// load before (state to lose) and after (recovery under load).
	at := func() sim.Cycle {
		return horizon/10 + sim.Cycle(rng.Int63n(int64(horizon*7/10+1)))
	}
	n := 1 + rng.Intn(3)
	if n > nodes {
		n = nodes
	}
	switch rng.Intn(6) {
	case 0: // single crash
		p.Crashes = []NodeCrash{{Node: rng.Intn(nodes), At: at()}}
	case 1: // rolling: distinct nodes, spread times
		perm := rng.Perm(nodes)
		for i := 0; i < n; i++ {
			p.Crashes = append(p.Crashes, NodeCrash{Node: perm[i], At: at()})
		}
	case 2: // storm: two nodes inside one window
		if nodes == 1 {
			p.Crashes = []NodeCrash{{Node: 0, At: at()}}
			break
		}
		t := at()
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		for b == a {
			b = rng.Intn(nodes)
		}
		gap := sim.Cycle(rng.Int63n(int64(horizon/20 + 1)))
		p.Crashes = []NodeCrash{{Node: a, At: t}, {Node: b, At: t + gap}}
	case 3: // repeat offender
		victim := rng.Intn(nodes)
		t := at()
		p.Crashes = []NodeCrash{
			{Node: victim, At: t},
			{Node: victim, At: t + horizon/8 + sim.Cycle(rng.Int63n(int64(horizon/4+1)))},
		}
	case 4: // double fault inside one detection window
		if nodes == 1 {
			p.Crashes = []NodeCrash{{Node: 0, At: at()}}
			break
		}
		t := at()
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		for b == a {
			b = rng.Intn(nodes)
		}
		p.Crashes = []NodeCrash{
			{Node: a, At: t},
			{Node: b, At: t + sim.Cycle(rng.Int63n(30_000))},
		}
	default: // catch-up strike: re-hit the victim mid-reboot/resync
		victim := rng.Intn(nodes)
		t := at()
		p.Crashes = []NodeCrash{
			{Node: victim, At: t},
			{Node: victim, At: t + 60_000 + sim.Cycle(rng.Int63n(int64(horizon/10+1)))},
		}
	}
	sort.SliceStable(p.Crashes, func(i, j int) bool { return p.Crashes[i].At < p.Crashes[j].At })
	return p
}
