package fault

import (
	"math/rand"
	"testing"

	"silo/internal/logging"
	"silo/internal/pm"
	"silo/internal/sim"
)

func TestTriggerStringParseRoundtrip(t *testing.T) {
	for _, tr := range []Trigger{TriggerNone, TriggerOp, TriggerCycle, TriggerCommit, TriggerOverflow} {
		got, err := ParseTrigger(tr.String())
		if err != nil || got != tr {
			t.Errorf("trigger %v: parsed %v, err %v", tr, got, err)
		}
	}
	if _, err := ParseTrigger("never"); err == nil {
		t.Error("unknown trigger accepted")
	}
	if Trigger(99).String() != "invalid" {
		t.Error("out-of-range trigger stringer")
	}
}

func TestPlanStringParseRoundtrip(t *testing.T) {
	plans := []Plan{
		{},
		{Trigger: TriggerOp, AtOp: 137, Seed: 5},
		{Trigger: TriggerCycle, AtCycle: sim.Cycle(40_000), FlushBudget: 64, TearWords: true},
		{Trigger: TriggerCommit, AfterCommits: 3, FlushBudget: 100, StrictBudget: true, BitFlips: 2, Seed: -9},
		{Trigger: TriggerOverflow, AfterAppends: 12, RecrashEvery: 7},
	}
	for _, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if got.String() != s {
			t.Errorf("roundtrip %q -> %q", s, got.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"trigger", "trigger=bogus", "at=x", "wat=1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	// Empty string is the zero plan, not an error.
	if p, err := ParsePlan(""); err != nil || p.Active() {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
}

func TestRandomPlansValidAndReplayable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := Random(rng, 500, false, false)
		if p.StrictBudget || p.BitFlips != 0 {
			t.Fatal("beyond-spec faults generated without opt-in")
		}
		if p.FlushBudget < 0 || p.RecrashEvery < 0 {
			t.Fatalf("negative knob: %+v", p)
		}
		// Every generated schedule must survive the repro-line round trip.
		got, err := ParsePlan(p.String())
		if err != nil || got.String() != p.String() {
			t.Fatalf("plan %q does not replay: %v", p.String(), err)
		}
	}
	// With the gates open, the beyond-spec classes eventually appear.
	strict, flips := false, false
	for i := 0; i < 200; i++ {
		p := Random(rng, 500, true, true)
		strict = strict || p.StrictBudget
		flips = flips || p.BitFlips > 0
	}
	if !strict || !flips {
		t.Error("allowStrict/allowFlips never fired in 200 draws")
	}
}

func TestFlipLogBits(t *testing.T) {
	dev := pm.New(pm.DefaultConfig())
	region := logging.NewRegionWriter(dev, 2)
	rng := rand.New(rand.NewSource(7))

	// Empty log: nothing to corrupt.
	if n := FlipLogBits(dev, region, rng, 3); n != 0 {
		t.Fatalf("flipped %d bits in an empty log", n)
	}

	region.AppendAtCrash(0, []logging.Image{
		{Kind: logging.ImageUndo, TID: 0, TxID: 1, Addr: 0x100, Data: 5},
		logging.CommitImage(0, 1),
	})
	used := int(region.Used(0))
	before := append([]byte(nil), dev.Peek(region.AreaBase(0), used)...)
	if n := FlipLogBits(dev, region, rng, 1); n != 1 {
		t.Fatalf("flipped %d bits, want 1", n)
	}
	after := dev.Peek(region.AreaBase(0), used)
	diff := 0
	for i := range before {
		for b := before[i] ^ after[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bits differ in the log area, want exactly 1", diff)
	}
}
