// Package fault describes adversarial crash schedules for the simulated
// machine: *when* the power fails (an op count, a cycle, mid-commit
// window, mid-overflow eviction), *how much* of the battery-backed
// selective flush survives (a byte budget that can tear the last record
// at word granularity), and which media faults strike the log (bit
// flips). A Plan is pure data, derived deterministically from a seed, so
// any failing schedule the torture harness finds is replayable from its
// parameters alone.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/pm"
	"silo/internal/sim"
)

// Trigger selects what event fires the crash.
type Trigger uint8

const (
	// TriggerNone: no crash (the plan may still shape an end-of-run
	// crash's flush budget).
	TriggerNone Trigger = iota
	// TriggerOp crashes when the machine's op counter reaches AtOp.
	TriggerOp
	// TriggerCycle crashes at the first scheduling point at or after
	// simulated cycle AtCycle — op boundaries no longer quantize the
	// crash point across designs, because the same cycle lands inside
	// different operations under different timings.
	TriggerCycle
	// TriggerCommit crashes at the first operation after the
	// AfterCommits-th transaction commit — inside the commit window,
	// while the committed transaction's in-place updates still sit in
	// the WPQ and its buffer is pending deallocation (§III-D).
	TriggerCommit
	// TriggerOverflow crashes at the first operation after the
	// AfterAppends-th run-time log-region append — for Silo that is
	// mid-overflow-eviction (§III-F), for the log-as-backup baselines
	// mid-log-write.
	TriggerOverflow
)

func (t Trigger) String() string {
	switch t {
	case TriggerNone:
		return "none"
	case TriggerOp:
		return "op"
	case TriggerCycle:
		return "cycle"
	case TriggerCommit:
		return "commit"
	case TriggerOverflow:
		return "overflow"
	}
	return "invalid"
}

// ParseTrigger is the inverse of Trigger.String.
func ParseTrigger(s string) (Trigger, error) {
	for _, t := range []Trigger{TriggerNone, TriggerOp, TriggerCycle, TriggerCommit, TriggerOverflow} {
		if t.String() == s {
			return t, nil
		}
	}
	return TriggerNone, fmt.Errorf("fault: unknown trigger %q", s)
}

// Plan is one deterministic crash schedule.
type Plan struct {
	// Seed drives the plan's own randomness (bit-flip positions).
	Seed int64

	Trigger Trigger
	// AtOp is the op counter value for TriggerOp.
	AtOp int64
	// AtCycle is the simulated time for TriggerCycle.
	AtCycle sim.Cycle
	// AfterCommits is the commit count for TriggerCommit.
	AfterCommits int64
	// AfterAppends is the run-time log append count for TriggerOverflow.
	AfterAppends int64

	// FlushBudget bounds the crash flush to this many bytes (0 =
	// unlimited, a correctly-provisioned battery).
	FlushBudget int
	// TearWords lets the budget cut the last record at 8-byte-word
	// granularity instead of dropping it whole.
	TearWords bool
	// StrictBudget makes even critical records (commit ID tuples, undo
	// logs) draw from the budget — a battery failed below its Table IV
	// sizing. Recovery can then legitimately lose committed work, so
	// strict plans are for detection tests, not zero-mismatch campaigns.
	StrictBudget bool

	// BitFlips flips this many random bits across the used log areas
	// after the crash flush — media faults the record CRCs must catch.
	BitFlips int

	// RecrashEvery, when > 0, crashes recovery itself after every this
	// many applied words; the harness then restarts recovery, proving
	// idempotence.
	RecrashEvery int
}

// Active reports whether the plan fires a mid-run crash.
func (p *Plan) Active() bool { return p != nil && p.Trigger != TriggerNone }

// String renders the plan as the key=value list ParsePlan accepts.
func (p Plan) String() string {
	parts := []string{"trigger=" + p.Trigger.String()}
	add := func(k string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	switch p.Trigger {
	case TriggerOp:
		add("at", p.AtOp)
	case TriggerCycle:
		add("at", int64(p.AtCycle))
	case TriggerCommit:
		add("at", p.AfterCommits)
	case TriggerOverflow:
		add("at", p.AfterAppends)
	}
	add("budget", int64(p.FlushBudget))
	if p.TearWords {
		parts = append(parts, "tear=1")
	}
	if p.StrictBudget {
		parts = append(parts, "strict=1")
	}
	add("flips", int64(p.BitFlips))
	add("recrash", int64(p.RecrashEvery))
	add("seed", p.Seed)
	return strings.Join(parts, ",")
}

// ParsePlan parses the comma-separated key=value form of String.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("fault: bad plan field %q", kv)
		}
		if k == "trigger" {
			t, err := ParseTrigger(v)
			if err != nil {
				return p, err
			}
			p.Trigger = t
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("fault: bad plan value %q: %v", kv, err)
		}
		switch k {
		case "at":
			p.AtOp, p.AtCycle = n, sim.Cycle(n)
			p.AfterCommits, p.AfterAppends = n, n
		case "budget":
			p.FlushBudget = int(n)
		case "tear":
			p.TearWords = n != 0
		case "strict":
			p.StrictBudget = n != 0
		case "flips":
			p.BitFlips = int(n)
		case "recrash":
			p.RecrashEvery = int(n)
		case "seed":
			p.Seed = n
		default:
			return p, fmt.Errorf("fault: unknown plan field %q", k)
		}
	}
	return p, nil
}

// Random derives a crash schedule from rng, scaled to a run of roughly
// totalOps operations. allowStrict/allowFlips gate the beyond-spec fault
// classes that can legitimately lose committed work (they break the
// zero-mismatch guarantee, so campaigns keep them off by default).
func Random(rng *rand.Rand, totalOps int64, allowStrict, allowFlips bool) Plan {
	if totalOps < 4 {
		totalOps = 4
	}
	p := Plan{Seed: rng.Int63()}
	switch rng.Intn(5) {
	case 0:
		p.Trigger = TriggerOp
		p.AtOp = 1 + rng.Int63n(totalOps)
	case 1:
		// Ops take ~1–300 cycles; an op-scaled cycle count lands the
		// crash anywhere from the warm-up to past the end of the run.
		p.Trigger = TriggerCycle
		p.AtCycle = sim.Cycle(1 + rng.Int63n(totalOps*40))
	case 2:
		p.Trigger = TriggerCommit
		p.AfterCommits = 1 + rng.Int63n(totalOps/4+1)
	case 3:
		p.Trigger = TriggerOverflow
		p.AfterAppends = 1 + rng.Int63n(64)
	default:
		p.Trigger = TriggerNone // crash at completion
	}
	switch rng.Intn(3) {
	case 0: // unlimited
	case 1:
		p.FlushBudget = 8 * (1 + rng.Intn(64)) // 8–512 B
		p.TearWords = true
	case 2:
		p.FlushBudget = 1 + rng.Intn(512)
		p.TearWords = rng.Intn(2) == 0
	}
	if allowStrict && rng.Intn(4) == 0 {
		p.StrictBudget = true
	}
	if allowFlips && rng.Intn(4) == 0 {
		p.BitFlips = 1 + rng.Intn(8)
	}
	if rng.Intn(2) == 0 {
		p.RecrashEvery = 1 + rng.Intn(32)
	}
	return p
}

// FlipLogBits flips n random bits across the used prefixes of every
// thread's log area — post-crash media corruption the per-record CRCs
// must detect. Threads with empty logs are skipped; if no thread has
// log bytes, nothing happens.
func FlipLogBits(dev *pm.Device, region *logging.RegionWriter, rng *rand.Rand, n int) int {
	type area struct {
		base mem.Addr
		used int64
	}
	var areas []area
	var total int64
	for t := 0; t < region.Threads(); t++ {
		if u := int64(region.Used(t)); u > 0 {
			areas = append(areas, area{region.AreaBase(t), u})
			total += u
		}
	}
	if total == 0 {
		return 0
	}
	sort.Slice(areas, func(i, j int) bool { return areas[i].base < areas[j].base })
	flipped := 0
	for i := 0; i < n; i++ {
		off := rng.Int63n(total)
		for _, a := range areas {
			if off >= a.used {
				off -= a.used
				continue
			}
			addr := a.base + mem.Addr(off)
			b := dev.Peek(addr, 1)
			b[0] ^= 1 << uint(rng.Intn(8))
			dev.Populate(addr, b)
			flipped++
			break
		}
	}
	return flipped
}
