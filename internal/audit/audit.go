// Package audit is the always-on runtime invariant layer of the Silo
// reproduction. The paper's correctness argument rests on structural
// invariants — the 20-entry log buffer and its comparator discipline
// (§III-B/C), the flush-bit state machine against cacheline evictions
// (§III-D), the ADR-protected WPQ (§II-A), the commit-tuple-first crash
// flush ordering (§III-G), and the Table IV battery sizing (§VI-E) —
// that the end-to-end golden-shadow diff can only report hundreds of
// thousands of cycles after they break, as an opaque word mismatch.
//
// The auditor checks each invariant at the step where it can first be
// violated and fails fast: a violation panics with a *Violation carrying
// the invariant's name, the violating cycle, and a ring-buffered trail of
// recent machine events, which the torture harness converts into a
// TortureFailure with the campaign's Repro() line instead of aborting the
// fleet.
//
// The trail rides the machine's typed telemetry stream: the auditor is a
// telemetry.Sink, so every probe event any layer emits lands in the ring
// as a structured telemetry.Event (rendered to strings only when a
// violation needs printing), and the event cycles keep the auditor's
// clock current.
//
// Checks never alter simulated timing or statistics — the auditor costs
// host wall-clock only, so benchmark *results* are identical with it on
// or off; it is switchable purely to keep sweep wall-clock down.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// Named invariants, referenced by tests and by failure reports.
const (
	InvLogBuffer       = "log-buffer"            // occupancy ≤ capacity, comparator/merge consistency
	InvFlushBit        = "flush-bit-eviction"    // evicted line ⇒ matching in-tx entries carry flush-bit 1
	InvWPQ             = "wpq-capacity"          // WPQ occupancy ≤ ADR-domain slot count
	InvCommitDurable   = "commit-durability"     // committed word durable at Tx_end (Log-as-Data IPU)
	InvCrashOrder      = "crash-flush-order"     // commit ID tuple precedes its redo stream
	InvEnergy          = "energy-ledger"         // crash budget never negative; critical set within Table IV sizing
	InvConservation    = "adr-conservation"      // InjectCrash preserves the durable data region
	InvReconstructible = "post-commit-durability" // every committed word reconstructible from durable domains
	InvIdempotence     = "recovery-idempotence"  // a second recovery pass changes nothing
)

// Violation is the fail-fast panic value raised by a failed invariant.
type Violation struct {
	Invariant string    // one of the Inv* names
	Message   string
	Cycle     sim.Cycle // simulated cycle at which the invariant fired
	Trail     []string  // recent machine events rendered, oldest first
	Events    []telemetry.Event // the same trail, structured
}

// Error renders the violation without the trail (the harness prints the
// trail separately, indented under the failure).
func (v *Violation) Error() string {
	return fmt.Sprintf("audit: invariant %s violated at cycle %d: %s", v.Invariant, v.Cycle, v.Message)
}

// trailSize is the default ring capacity; TrailSize overrides it.
const trailSize = 128

// Auditor carries one simulated machine's invariant state. It is not
// safe for concurrent use; the simulation engine serializes all hooks.
// It implements telemetry.Sink, so grafting it onto the machine's
// recorder feeds the trail from every instrumented layer.
type Auditor struct {
	enabled bool

	ring []telemetry.Event
	next int
	full bool
	size int

	now    sim.Cycle // latest cycle observed on the event stream
	checks int64

	// Per-crash-flush state (reset by BeginCrashFlush).
	crashTuples   map[uint32]bool // (tid<<16 | txid) commit tuples flushed so far
	crashCritical map[int]int64   // per-thread critical crash-flush bytes
}

// Option configures an Auditor at construction.
type Option func(*Auditor)

// TrailSize sets the event-ring capacity (minimum 1). Deep dives want
// long trails; wide torture sweeps want short ones to bound memory.
func TrailSize(n int) Option {
	return func(a *Auditor) {
		if n >= 1 {
			a.size = n
		}
	}
}

// New returns an auditor; a disabled auditor turns every check into a
// cheap no-op so call sites need no nil guards.
func New(enabled bool, opts ...Option) *Auditor {
	a := &Auditor{enabled: enabled, size: trailSize}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Enabled reports whether checks are live.
func (a *Auditor) Enabled() bool { return a != nil && a.enabled }

// Checks returns the number of invariant checks performed (overhead and
// liveness accounting: a mutation test asserting a violation fired is
// vacuous if no checks ran at all).
func (a *Auditor) Checks() int64 {
	if a == nil {
		return 0
	}
	return a.checks
}

// Event implements telemetry.Sink: typed probe events feed the trail
// ring and advance the auditor's cycle clock, which stamps violations.
func (a *Auditor) Event(e telemetry.Event) {
	if !a.Enabled() {
		return
	}
	if e.Cycle > a.now {
		a.now = e.Cycle
	}
	a.record(e)
}

func (a *Auditor) record(e telemetry.Event) {
	if len(a.ring) < a.size {
		a.ring = append(a.ring, e)
		return
	}
	a.ring[a.next] = e
	a.next = (a.next + 1) % a.size
	a.full = true
}

// Eventf appends a formatted annotation to the trail, stamped with the
// latest cycle seen on the stream.
func (a *Auditor) Eventf(format string, args ...any) {
	if !a.Enabled() {
		return
	}
	a.record(telemetry.Event{Cycle: a.now, Kind: telemetry.KNote, Core: -1, Note: fmt.Sprintf(format, args...)})
}

// TrailEvents returns the recorded events, oldest first, structured.
func (a *Auditor) TrailEvents() []telemetry.Event {
	if a == nil {
		return nil
	}
	if !a.full {
		out := make([]telemetry.Event, len(a.ring))
		copy(out, a.ring)
		return out
	}
	out := make([]telemetry.Event, 0, a.size)
	out = append(out, a.ring[a.next:]...)
	out = append(out, a.ring[:a.next]...)
	return out
}

// Trail returns the recorded events rendered to strings, oldest first.
func (a *Auditor) Trail() []string {
	events := a.TrailEvents()
	if events == nil {
		return nil
	}
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.String()
	}
	return out
}

// failf records the violation as a final trail event and panics with it.
func (a *Auditor) failf(invariant, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	a.Eventf("VIOLATION %s: %s", invariant, msg)
	events := a.TrailEvents()
	panic(&Violation{
		Invariant: invariant,
		Message:   msg,
		Cycle:     a.now,
		Trail:     a.Trail(),
		Events:    events,
	})
}

// BufferedDesign is implemented by designs built around per-core
// battery-backed log buffers (Silo); the machine uses it to audit buffer
// discipline without the design having to know about the auditor.
type BufferedDesign interface {
	// LogBuffer returns core's log buffer.
	LogBuffer(core int) *logging.Buffer
	// InTx reports whether core has an open transaction.
	InTx(core int) bool
	// MergeEnabled reports whether comparator merging is on (§III-C);
	// with it on, the buffer must never hold two entries for one word.
	MergeEnabled() bool
}

// CheckLogBuffer enforces the §III-B/§III-C buffer discipline right
// after a store to addr: occupancy within the hardware capacity, and —
// with merging on — at most one entry for addr (the parallel comparator
// array makes a duplicate physically impossible, and the store just
// executed is the only step that can have created one).
func (a *Auditor) CheckLogBuffer(core int, buf *logging.Buffer, mergeOn bool, addr mem.Addr) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if buf.Len() > buf.Cap() {
		a.failf(InvLogBuffer, "core %d log buffer holds %d entries, capacity %d", core, buf.Len(), buf.Cap())
	}
	if !mergeOn {
		return
	}
	w := addr.Word()
	matches := 0
	for _, e := range buf.Entries() {
		if e.Addr == w {
			if matches++; matches > 1 {
				a.failf(InvLogBuffer,
					"core %d holds %d entries for word %v with merging on (comparator miss)",
					core, matches, w)
			}
		}
	}
}

// CheckFlushBits enforces the §III-D flush-bit state machine right after
// a dirty cacheline left the LLC: every in-flight log entry covering a
// word of that line must now carry flush-bit 1, or its new data would be
// redundantly flushed after commit — and, worse, a merge-after-eviction
// bookkeeping bug would silently drop committed data.
func (a *Auditor) CheckFlushBits(core int, buf *logging.Buffer, la mem.Addr) {
	if !a.Enabled() {
		return
	}
	a.checks++
	buf.MatchLine(la, func(e *logging.Entry) {
		if !e.FlushBit {
			a.failf(InvFlushBit,
				"core %d: line %v evicted but entry %v still has flush-bit 0", core, la.Line(), e)
		}
	})
}

// CheckWPQ enforces the ADR-domain slot count: the write pending queue
// can never hold more entries than the platform's battery is sized to
// drain (§II-A; 64 per channel in Table II).
func (a *Auditor) CheckWPQ(channel, occupancy, capacity int) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if occupancy > capacity {
		a.failf(InvWPQ, "WPQ channel %d holds %d entries, capacity %d", channel, occupancy, capacity)
	}
}

// CheckCommitDurability enforces Log-as-Data's post-commit obligation at
// the step it is established: when Tx_end returns, every word the
// transaction wrote must already be durable (WPQ-accepted in-place
// update, evicted cacheline, or overflow flush) — got is the durable
// value actually read back.
func (a *Auditor) CheckCommitDurability(core int, addr mem.Addr, want, got mem.Word) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if want != got {
		a.failf(InvCommitDurable,
			"core %d committed %v=%#x but durable domains hold %#x at Tx_end",
			core, addr, uint64(want), uint64(got))
	}
}

// BeginCrashFlush resets the per-crash bookkeeping; the machine calls it
// at the top of InjectCrash, before the design's battery flush runs.
func (a *Auditor) BeginCrashFlush() {
	if !a.Enabled() {
		return
	}
	a.crashTuples = make(map[uint32]bool)
	a.crashCritical = make(map[int]int64)
}

// ObserveCrashAppend watches one crash-flush append (the RegionWriter
// hook). It enforces the §III-G flush order — a transaction's commit ID
// tuple must reach the log before any of its redo records, because the
// checked recovery scan stops at the first torn record and a tuple
// behind a torn redo suffix would be invisible — and accounts critical
// bytes against the Table IV battery reserve.
func (a *Auditor) ObserveCrashAppend(tid int, critical bool, images []logging.Image) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if a.crashTuples == nil {
		a.crashTuples = make(map[uint32]bool)
	}
	if a.crashCritical == nil {
		a.crashCritical = make(map[int]int64)
	}
	for _, im := range images {
		key := uint32(im.TID)<<16 | uint32(im.TxID)
		switch im.Kind {
		case logging.ImageCommit:
			a.crashTuples[key] = true
		case logging.ImageRedo:
			if !a.crashTuples[key] {
				a.failf(InvCrashOrder,
					"thread %d crash-flushed redo for tx (%d,%d) before its commit ID tuple",
					tid, im.TID, im.TxID)
			}
		}
		if critical {
			a.crashCritical[tid] += int64(im.Size() + logging.SealBytes)
		}
	}
	// No trail event here: the RegionWriter's KLogCrashFlush probe flows
	// through the machine's recorder into this auditor's ring already.
}

// CheckCriticalBudget verifies the must-flush set stayed within the
// battery reserve the paper's Table IV sizes: budgetBytes is the sealed
// size of a full buffer of undo logs plus one commit tuple.
func (a *Auditor) CheckCriticalBudget(tid int, budgetBytes int64) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if got := a.crashCritical[tid]; got > budgetBytes {
		a.failf(InvEnergy,
			"thread %d crash-flushed %d critical bytes, Table IV battery reserve is %d",
			tid, got, budgetBytes)
	}
}

// CheckEnergyLedger verifies the crash-flush energy budget never went
// negative — an accounting bug would let a dead battery keep writing.
func (a *Auditor) CheckEnergyLedger(remaining int) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if remaining < 0 {
		a.failf(InvEnergy, "crash energy budget drained below zero: %d bytes", remaining)
	}
}

// CheckConservation verifies one data-region word across InjectCrash: a
// power failure must preserve the durable (ADR + media) domains exactly.
// allowed lists additionally-legal values for platforms that battery-back
// the caches (eADR/BBB flush dirty lines at the crash).
func (a *Auditor) CheckConservation(addr mem.Addr, before, after mem.Word, allowed []mem.Word) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if after == before {
		return
	}
	for _, v := range allowed {
		if after == v {
			return
		}
	}
	a.failf(InvConservation,
		"crash altered durable word %v: %#x -> %#x (not a battery-backed cache flush)",
		addr, uint64(before), uint64(after))
}

// CheckReconstructible verifies one committed word is reconstructible
// from the durable domains after the crash flush: got is the value the
// recovery procedure would produce (durable data overlaid with the
// resolved log writes), want the golden committed value.
func (a *Auditor) CheckReconstructible(addr mem.Addr, want, got mem.Word) {
	if !a.Enabled() {
		return
	}
	a.checks++
	if want != got {
		a.failf(InvReconstructible,
			"committed word %v not reconstructible after crash flush: recovery would produce %#x, committed %#x",
			addr, uint64(got), uint64(want))
	}
}

// CompareRecoveryPasses is the recovery-idempotence invariant, promoted
// out of the torture harness: it compares the golden-shadow mismatch
// lists and scan counts of two consecutive recovery passes by *content*
// — two passes disagreeing on different words of equal count are just as
// broken as ones disagreeing on count — and returns violation messages
// to append to the first pass's list (which is never dropped).
func CompareRecoveryPasses(first, second []string, firstRecords, secondRecords, firstQuar, secondQuar int) []string {
	var out []string
	if added, removed := diffStrings(first, second); len(added)+len(removed) > 0 {
		msg := fmt.Sprintf("audit: %s: second recovery pass changed the data region", InvIdempotence)
		if len(added) > 0 {
			msg += fmt.Sprintf("; newly wrong: %s", strings.Join(clip(added, 3), "; "))
		}
		if len(removed) > 0 {
			msg += fmt.Sprintf("; silently healed: %s", strings.Join(clip(removed, 3), "; "))
		}
		out = append(out, msg)
	}
	if firstRecords != secondRecords || firstQuar != secondQuar {
		out = append(out, fmt.Sprintf(
			"audit: %s: second recovery pass scanned differently: %d/%d records, %d/%d quarantined",
			InvIdempotence, secondRecords, firstRecords, secondQuar, firstQuar))
	}
	return out
}

// diffStrings returns second∖first (added) and first∖second (removed),
// both sorted, treating the slices as multisets.
func diffStrings(first, second []string) (added, removed []string) {
	count := make(map[string]int, len(first))
	for _, s := range first {
		count[s]++
	}
	for _, s := range second {
		if count[s] > 0 {
			count[s]--
		} else {
			added = append(added, s)
		}
	}
	for s, n := range count {
		for i := 0; i < n; i++ {
			removed = append(removed, s)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

func clip(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	out := make([]string, 0, n+1)
	out = append(out, s[:n]...)
	return append(out, fmt.Sprintf("... %d more", len(s)-n))
}
