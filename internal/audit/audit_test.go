package audit

import (
	"fmt"
	"strings"
	"testing"

	"silo/internal/logging"
	"silo/internal/mem"
	"silo/internal/telemetry"
)

// violation runs fn and returns the *Violation it panics with, failing
// the test if it does not panic or panics with something else.
func violation(t *testing.T, fn func()) *Violation {
	t.Helper()
	var v *Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			if v, ok = r.(*Violation); !ok {
				t.Fatalf("panicked with %T: %v", r, r)
			}
		}()
		fn()
	}()
	if v == nil {
		t.Fatal("expected an audit violation")
	}
	return v
}

func TestTrailRingKeepsNewest(t *testing.T) {
	a := New(true)
	for i := 0; i < 200; i++ {
		a.Eventf("e%d", i)
	}
	tr := a.Trail()
	if len(tr) != trailSize {
		t.Fatalf("trail holds %d events, want %d", len(tr), trailSize)
	}
	if tr[0] != fmt.Sprintf("e%d", 200-trailSize) {
		t.Errorf("oldest retained = %q", tr[0])
	}
	if tr[len(tr)-1] != "e199" {
		t.Errorf("newest = %q", tr[len(tr)-1])
	}
}

func TestViolationCarriesTrailAndName(t *testing.T) {
	a := New(true)
	a.Eventf("before")
	v := violation(t, func() { a.CheckWPQ(0, 65, 64) })
	if v.Invariant != InvWPQ {
		t.Errorf("invariant = %q", v.Invariant)
	}
	if !strings.Contains(v.Error(), "invariant "+InvWPQ+" violated") {
		t.Errorf("error = %q", v.Error())
	}
	if len(v.Trail) < 2 || v.Trail[0] != "before" {
		t.Errorf("trail = %v", v.Trail)
	}
	if !strings.HasPrefix(v.Trail[len(v.Trail)-1], "VIOLATION "+InvWPQ) {
		t.Errorf("last trail event = %q", v.Trail[len(v.Trail)-1])
	}
}

func TestTrailSizeOption(t *testing.T) {
	a := New(true, TrailSize(4))
	for i := 0; i < 10; i++ {
		a.Eventf("e%d", i)
	}
	tr := a.Trail()
	if len(tr) != 4 {
		t.Fatalf("trail holds %d events, want 4", len(tr))
	}
	if tr[0] != "e6" || tr[3] != "e9" {
		t.Errorf("trail = %v", tr)
	}
	// Degenerate sizes fall back to the default.
	b := New(true, TrailSize(0))
	for i := 0; i < trailSize+5; i++ {
		b.Eventf("x")
	}
	if len(b.Trail()) != trailSize {
		t.Errorf("TrailSize(0) trail holds %d", len(b.Trail()))
	}
}

func TestAuditorIsTelemetrySink(t *testing.T) {
	a := New(true)
	var _ telemetry.Sink = a
	r := telemetry.NewRecorder(a)
	r.TxBegin(1, 500, 3)
	r.WPQWrite(0, 640, 12, 4, 64)
	a.Eventf("manual note")

	events := a.TrailEvents()
	if len(events) != 3 {
		t.Fatalf("trail events = %+v", events)
	}
	if events[0].Kind != telemetry.KTxBegin || events[1].Kind != telemetry.KWPQWrite {
		t.Errorf("typed events not retained: %+v", events)
	}
	// The Eventf note is stamped with the latest stream cycle.
	if events[2].Cycle != 640 {
		t.Errorf("note cycle = %d, want 640", events[2].Cycle)
	}
	// A violation carries the stream cycle and the structured events.
	v := violation(t, func() { a.CheckWPQ(0, 65, 64) })
	if v.Cycle != 640 {
		t.Errorf("violation cycle = %d, want 640", v.Cycle)
	}
	if len(v.Events) != len(v.Trail) || v.Events[0].Kind != telemetry.KTxBegin {
		t.Errorf("structured events missing: %d events vs %d trail", len(v.Events), len(v.Trail))
	}
	if !strings.Contains(v.Error(), "at cycle 640") {
		t.Errorf("error lacks cycle: %q", v.Error())
	}
	// Disabled auditors ignore the stream.
	d := New(false)
	telemetry.NewRecorder(d).TxBegin(0, 1, 0)
	if len(d.TrailEvents()) != 0 {
		t.Error("disabled auditor recorded stream events")
	}
}

func TestDisabledAuditorIsInert(t *testing.T) {
	for _, a := range []*Auditor{New(false), nil} {
		a.CheckWPQ(0, 1000, 64)
		a.CheckEnergyLedger(-5)
		a.CheckCommitDurability(0, 0x100, 1, 2)
		a.CheckConservation(0x100, 1, 2, nil)
		a.CheckReconstructible(0x100, 1, 2)
		a.Eventf("ignored")
		if a.Checks() != 0 || len(a.Trail()) != 0 {
			t.Error("disabled auditor did work")
		}
	}
}

func TestCheckLogBufferDuplicateWithMergeOn(t *testing.T) {
	a := New(true)
	buf := logging.NewBuffer(20)
	buf.Push(logging.Entry{Addr: 0x1000, New: 1})
	buf.Push(logging.Entry{Addr: 0x1040, New: 2})
	a.CheckLogBuffer(0, buf, true, 0x1000) // unique: fine
	buf.Push(logging.Entry{Addr: 0x1000, New: 3})
	v := violation(t, func() { a.CheckLogBuffer(0, buf, true, 0x1000) })
	if v.Invariant != InvLogBuffer {
		t.Errorf("invariant = %q", v.Invariant)
	}
	// With merging off, duplicates are legal.
	a2 := New(true)
	a2.CheckLogBuffer(0, buf, false, 0x1000)
}

func TestCheckFlushBits(t *testing.T) {
	a := New(true)
	buf := logging.NewBuffer(20)
	buf.Push(logging.Entry{Addr: 0x2000, FlushBit: true})
	buf.Push(logging.Entry{Addr: 0x2008, FlushBit: false})
	v := violation(t, func() { a.CheckFlushBits(1, buf, 0x2000) })
	if v.Invariant != InvFlushBit {
		t.Errorf("invariant = %q", v.Invariant)
	}
	// A different line's entries are not implicated.
	a.CheckFlushBits(1, buf, 0x9000)
}

func TestCrashFlushOrderInvariant(t *testing.T) {
	tuple := logging.CommitImage(0, 7)
	redo := logging.Image{Kind: logging.ImageRedo, TID: 0, TxID: 7, Addr: 0x100, Data: 1}

	a := New(true)
	a.BeginCrashFlush()
	a.ObserveCrashAppend(0, true, []logging.Image{tuple})
	a.ObserveCrashAppend(0, false, []logging.Image{redo}) // tuple first: fine

	b := New(true)
	b.BeginCrashFlush()
	v := violation(t, func() { b.ObserveCrashAppend(0, false, []logging.Image{redo}) })
	if v.Invariant != InvCrashOrder {
		t.Errorf("invariant = %q", v.Invariant)
	}
}

func TestCriticalBudgetAccounting(t *testing.T) {
	a := New(true)
	a.BeginCrashFlush()
	undo := logging.Entry{TID: 0, TxID: 1, Addr: 0x100, Old: 1}.UndoImage()
	images := make([]logging.Image, 21) // one more than a 20-entry buffer
	for i := range images {
		images[i] = undo
	}
	a.ObserveCrashAppend(0, true, images)
	budget := int64(20*(logging.UndoBytes+logging.SealBytes) + logging.CommitBytes + logging.SealBytes)
	v := violation(t, func() { a.CheckCriticalBudget(0, budget) })
	if v.Invariant != InvEnergy {
		t.Errorf("invariant = %q", v.Invariant)
	}
	// Exactly a full buffer of undo plus the tuple fits.
	b := New(true)
	b.BeginCrashFlush()
	b.ObserveCrashAppend(0, true, images[:20])
	b.ObserveCrashAppend(0, true, []logging.Image{logging.CommitImage(0, 1)})
	b.CheckCriticalBudget(0, budget)
}

func TestEnergyLedgerNonNegative(t *testing.T) {
	a := New(true)
	a.CheckEnergyLedger(0)
	v := violation(t, func() { a.CheckEnergyLedger(-1) })
	if v.Invariant != InvEnergy {
		t.Errorf("invariant = %q", v.Invariant)
	}
}

func TestConservationAllowsBatteryBackedCacheFlush(t *testing.T) {
	a := New(true)
	a.CheckConservation(0x100, 5, 5, nil)                  // unchanged
	a.CheckConservation(0x100, 5, 9, []mem.Word{9})        // eADR flush
	v := violation(t, func() { a.CheckConservation(0x100, 5, 9, []mem.Word{7}) })
	if v.Invariant != InvConservation {
		t.Errorf("invariant = %q", v.Invariant)
	}
}

func TestCompareRecoveryPassesContentSensitive(t *testing.T) {
	// Identical passes: silent.
	if out := CompareRecoveryPasses([]string{"a"}, []string{"a"}, 5, 5, 0, 0); len(out) != 0 {
		t.Errorf("identical passes reported: %v", out)
	}
	// Equal-length lists with different contents — the case the old
	// len()-based bookkeeping missed entirely.
	out := CompareRecoveryPasses([]string{"word A wrong"}, []string{"word B wrong"}, 5, 5, 0, 0)
	if len(out) != 1 || !strings.Contains(out[0], InvIdempotence) {
		t.Fatalf("equal-count content change not reported: %v", out)
	}
	if !strings.Contains(out[0], "word B wrong") || !strings.Contains(out[0], "word A wrong") {
		t.Errorf("diff lacks added/removed detail: %v", out)
	}
	// A second pass that heals mismatches is just as non-idempotent.
	if out := CompareRecoveryPasses([]string{"a"}, nil, 5, 5, 0, 0); len(out) != 1 {
		t.Errorf("silent healing not reported: %v", out)
	}
	// Scan-shape changes are reported separately.
	out = CompareRecoveryPasses(nil, nil, 5, 4, 0, 1)
	if len(out) != 1 || !strings.Contains(out[0], "scanned differently") {
		t.Errorf("scan change not reported: %v", out)
	}
}
