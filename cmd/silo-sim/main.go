// Command silo-sim runs one simulation — a (design, workload, cores)
// combination — and prints the full run record: simulated time, committed
// transactions, PM traffic at WPQ and media level, logging behaviour and
// cache statistics.
//
// Usage:
//
//	silo-sim -design Silo -workload TPCC -cores 8 -txns 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"silo"
)

func main() {
	var (
		design   = flag.String("design", "Silo", "design: "+strings.Join(silo.ExtendedDesigns(), ", "))
		wl       = flag.String("workload", "Btree", "workload: "+strings.Join(silo.Workloads(), ", ")+", TPCC-Mix, Rtree, Ctrie, TATP, Bank, Sweep<N>")
		cores    = flag.Int("cores", 1, "simulated cores (1 thread per core)")
		txns     = flag.Int("txns", 10000, "total transactions, split across cores")
		seed     = flag.Int64("seed", 42, "simulation seed")
		ops      = flag.Int("ops", 1, "workload operations per transaction")
		logBuf   = flag.Int("logbuf", 0, "Silo log buffer entries per core (0 = 20)")
		logLat   = flag.Int("loglat", 0, "log buffer access latency in cycles (0 = 8)")
		noMerge  = flag.Bool("no-merge", false, "disable Silo log merging (ablation)")
		noIgnore = flag.Bool("no-ignore", false, "disable Silo log ignorance (ablation)")
	)
	flag.Parse()

	res, err := silo.Run(silo.Config{
		Design:           *design,
		Workload:         *wl,
		Cores:            *cores,
		Transactions:     *txns,
		Seed:             *seed,
		OpsPerTx:         *ops,
		LogBufferEntries: *logBuf,
		LogBufferLatency: *logLat,
		Silo:             silo.SiloOptions{DisableMerge: *noMerge, DisableIgnore: *noIgnore},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("design=%s workload=%s cores=%d seed=%d\n", *design, *wl, *cores, *seed)
	fmt.Printf("  transactions         %12d\n", res.Transactions)
	fmt.Printf("  simulated cycles     %12d  (%.3f ms at 2 GHz)\n", res.Cycles, float64(res.Cycles)/2e6)
	fmt.Printf("  throughput           %12.1f  tx / M-cycles\n", res.Throughput())
	fmt.Printf("  loads / stores       %12d / %d\n", res.Loads, res.Stores)
	fmt.Printf("  write size per tx    %12.1f  B\n", res.WriteBytesPerTx())
	fmt.Println("PM traffic:")
	fmt.Printf("  WPQ writes / bytes   %12d / %d\n", res.WPQWrites, res.WPQBytes)
	fmt.Printf("  media writes / bytes %12d / %d\n", res.MediaWrites, res.MediaBytes)
	fmt.Printf("  PM reads             %12d\n", res.PMReads)
	fmt.Println("logging:")
	fmt.Printf("  entries created      %12d\n", res.LogEntriesCreated)
	fmt.Printf("  ignored / merged     %12d / %d\n", res.LogEntriesIgnored, res.LogEntriesMerged)
	fmt.Printf("  flushed to log region%12d\n", res.LogEntriesFlushed)
	fmt.Printf("  overflow events      %12d\n", res.LogOverflows)
	fmt.Printf("  flush-bits set       %12d\n", res.FlushBitSets)
	fmt.Println("caches:")
	fmt.Printf("  L1 hit rate          %12.2f%%\n", rate(res.L1Hits, res.L1Misses))
	fmt.Printf("  L2 hit rate          %12.2f%%\n", rate(res.L2Hits, res.L2Misses))
	fmt.Printf("  L3 hit rate          %12.2f%%\n", rate(res.L3Hits, res.L3Misses))
	fmt.Printf("  LLC writebacks       %12d\n", res.Writebacks)
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
