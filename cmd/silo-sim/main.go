// Command silo-sim runs one simulation — a (design, workload, cores)
// combination — and prints the full run record: simulated time, committed
// transactions, PM traffic at WPQ and media level, logging behaviour and
// cache statistics.
//
// Usage:
//
//	silo-sim -design Silo -workload TPCC -cores 8 -txns 10000
//	silo-sim -design Silo -workload Btree -telemetry trace.json
//	silo-sim -design Silo -workload Btree -metrics-interval 100000
//
// -telemetry records the run as a Chrome trace-event file: open it at
// ui.perfetto.dev to see one transaction track per core plus WPQ-depth
// and log-buffer-occupancy counter tracks. -metrics-interval folds the
// same probe stream into fixed-width windows and prints the time series.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"silo/internal/buildinfo"
	"silo/internal/core"
	"silo/internal/harness"
	"silo/internal/profiling"
	"silo/internal/sim"
	"silo/internal/telemetry"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		design   = flag.String("design", "Silo", "design: "+strings.Join(harness.ExtendedDesignNames(), ", "))
		wl       = flag.String("workload", "Btree", "workload: "+strings.Join(harness.WorkloadNames(), ", ")+", TPCC-Mix, Rtree, Ctrie, TATP, Bank, Sweep<N>")
		cores    = flag.Int("cores", 1, "simulated cores (1 thread per core)")
		txns     = flag.Int("txns", 10000, "total transactions, split across cores")
		seed     = flag.Int64("seed", 42, "simulation seed")
		ops      = flag.Int("ops", 1, "workload operations per transaction")
		logBuf   = flag.Int("logbuf", 0, "Silo log buffer entries per core (0 = 20)")
		logLat   = flag.Int("loglat", 0, "log buffer access latency in cycles (0 = 8)")
		noMerge  = flag.Bool("no-merge", false, "disable Silo log merging (ablation)")
		noIgnore = flag.Bool("no-ignore", false, "disable Silo log ignorance (ablation)")
		telOut   = flag.String("telemetry", "", "write a Chrome trace-event timeline (Perfetto-loadable) to this file")
		interval = flag.Int64("metrics-interval", 0, "fold telemetry into windows of this many cycles and print the series (0 = off)")
	)
	prof = profiling.Register("silo-sim")
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-sim", showVersion)

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	spec := harness.Spec{
		Design:        *design,
		Workload:      *wl,
		Cores:         *cores,
		Txns:          *txns,
		Seed:          *seed,
		OpsPerTx:      *ops,
		LogBufEntries: *logBuf,
		LogBufLatency: sim.Cycle(*logLat),
		SiloOpts:      core.Options{DisableMerge: *noMerge, DisableIgnore: *noIgnore},
	}

	var (
		ct      *telemetry.ChromeTrace
		traceF  *os.File
		sampler *telemetry.IntervalSampler
		sinks   []telemetry.Sink
	)
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			fatal(err)
		}
		traceF = f
		ct = telemetry.NewChromeTrace(f)
		sinks = append(sinks, ct)
	}
	if *interval > 0 {
		sampler = telemetry.NewIntervalSampler(sim.Cycle(*interval))
		sinks = append(sinks, sampler)
	}
	if len(sinks) > 0 {
		spec.Telemetry = telemetry.NewRecorder(sinks...)
	}

	res, err := harness.Run(spec)
	if err != nil {
		fatal(err)
	}
	if ct != nil {
		if err := ct.Close(); err != nil {
			fatal(err)
		}
		if err := traceF.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "silo-sim: telemetry timeline written to %s (open at ui.perfetto.dev)\n", *telOut)
	}

	fmt.Printf("design=%s workload=%s cores=%d seed=%d\n", *design, *wl, *cores, *seed)
	fmt.Printf("  transactions         %12d\n", res.Transactions)
	fmt.Printf("  simulated cycles     %12d  (%.3f ms at 2 GHz)\n", res.Cycles, float64(res.Cycles)/2e6)
	fmt.Printf("  throughput           %12.1f  tx / M-cycles\n", res.Throughput())
	fmt.Printf("  loads / stores       %12d / %d\n", res.Loads, res.Stores)
	fmt.Printf("  write size per tx    %12.1f  B\n", res.WriteBytesPerTx())
	fmt.Println("PM traffic:")
	fmt.Printf("  WPQ writes / bytes   %12d / %d\n", res.WPQWrites, res.WPQBytes)
	fmt.Printf("  media writes / bytes %12d / %d\n", res.MediaWrites, res.MediaBytes)
	fmt.Printf("  PM reads             %12d\n", res.PMReads)
	fmt.Println("logging:")
	fmt.Printf("  entries created      %12d\n", res.LogEntriesCreated)
	fmt.Printf("  ignored / merged     %12d / %d\n", res.LogEntriesIgnored, res.LogEntriesMerged)
	fmt.Printf("  flushed to log region%12d\n", res.LogEntriesFlushed)
	fmt.Printf("  overflow events      %12d\n", res.LogOverflows)
	fmt.Printf("  flush-bits set       %12d\n", res.FlushBitSets)
	fmt.Println("caches:")
	fmt.Printf("  L1 hit rate          %12.2f%%\n", rate(res.L1Hits, res.L1Misses))
	fmt.Printf("  L2 hit rate          %12.2f%%\n", rate(res.L2Hits, res.L2Misses))
	fmt.Printf("  L3 hit rate          %12.2f%%\n", rate(res.L3Hits, res.L3Misses))
	fmt.Printf("  LLC writebacks       %12d\n", res.Writebacks)

	if spec.Telemetry != nil {
		if snap := spec.Telemetry.Metrics().Snapshot(); len(snap) > 0 {
			fmt.Println("telemetry metrics:")
			for _, m := range snap {
				switch m.Kind {
				case "histogram":
					fmt.Printf("  %-24s n=%d p50=%.0f p99=%.0f max=%d mean=%.1f\n",
						m.Name, m.Value, m.P50, m.P99, m.Max, m.Mean)
				case "gauge":
					fmt.Printf("  %-24s %d (max %d)\n", m.Name, m.Value, m.Max)
				default:
					fmt.Printf("  %-24s %d\n", m.Name, m.Value)
				}
			}
		}
	}
	if sampler != nil {
		fmt.Println("timeline windows:")
		fmt.Print(sampler.Table())
	}
}

func rate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-sim:", err)
	prof.Stop()
	os.Exit(1)
}
