// Command silo-tracecheck validates a Chrome trace-event file emitted by
// the telemetry layer: the JSON must be well-formed, every track's
// timestamps monotone, and every duration slice properly nested. CI runs
// it over the artifact a short simulation records, so a probe regression
// that produces an unloadable timeline fails the build instead of being
// discovered inside Perfetto weeks later.
//
// Usage:
//
//	silo-tracecheck trace.json [more.json ...]
//	silo-sim -telemetry /dev/stdout ... | silo-tracecheck -
//
// Exit status: 0 when every file validates, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"silo/internal/buildinfo"
	"silo/internal/telemetry"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: silo-tracecheck <trace.json>... (or - for stdin)\n")
		flag.PrintDefaults()
	}
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-tracecheck", showVersion)
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		var r io.Reader
		name := path
		if path == "-" {
			r, name = os.Stdin, "<stdin>"
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "silo-tracecheck:", err)
				ok = false
				continue
			}
			defer f.Close()
			r = f
		}
		st, err := telemetry.ValidateChromeTrace(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silo-tracecheck: %s: INVALID: %v\n", name, err)
			ok = false
			continue
		}
		fmt.Printf("%s: OK — %d events, %d tracks, %d counter series (B=%d E=%d i=%d C=%d)\n",
			name, st.Events, st.Tracks, st.Counters,
			st.ByPhase["B"], st.ByPhase["E"], st.ByPhase["i"], st.ByPhase["C"])
	}
	if !ok {
		os.Exit(1)
	}
}
