// Command silo-tracecheck validates a Chrome trace-event file emitted by
// the telemetry layer: the JSON must be well-formed, every track's
// timestamps monotone, and every duration slice properly nested. CI runs
// it over the artifact a short simulation records, so a probe regression
// that produces an unloadable timeline fails the build instead of being
// discovered inside Perfetto weeks later.
//
// A .srs argument is a binary result store (silo-torture -out sweep.srs):
// it is opened read-only via mmap, the index is scanned for campaigns
// with an embedded trace blob, and each blob is decompressed and
// validated — no payload record is ever deserialized.
//
// Usage:
//
//	silo-tracecheck trace.json [more.json ...]
//	silo-tracecheck sweep.srs
//	silo-sim -telemetry /dev/stdout ... | silo-tracecheck -
//
// Exit status: 0 when every file validates, 1 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"silo/internal/buildinfo"
	"silo/internal/harness"
	"silo/internal/resultstore"
	"silo/internal/telemetry"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: silo-tracecheck <trace.json>... (or - for stdin)\n")
		flag.PrintDefaults()
	}
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-tracecheck", showVersion)
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		if path != "-" && harness.IsStorePath(path) {
			if !checkStore(path) {
				ok = false
			}
			continue
		}
		var r io.Reader
		name := path
		if path == "-" {
			r, name = os.Stdin, "<stdin>"
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "silo-tracecheck:", err)
				ok = false
				continue
			}
			defer f.Close()
			r = f
		}
		st, err := telemetry.ValidateChromeTrace(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silo-tracecheck: %s: INVALID: %v\n", name, err)
			ok = false
			continue
		}
		fmt.Printf("%s: OK — %d events, %d tracks, %d counter series (B=%d E=%d i=%d C=%d)\n",
			name, st.Events, st.Tracks, st.Counters,
			st.ByPhase["B"], st.ByPhase["E"], st.ByPhase["i"], st.ByPhase["C"])
	}
	if !ok {
		os.Exit(1)
	}
}

// checkStore validates every trace blob embedded in a binary result
// store. The index scan finds the campaigns with traces; only those
// blobs are decompressed — payload records stay untouched.
func checkStore(path string) bool {
	st, err := resultstore.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-tracecheck:", err)
		return false
	}
	defer st.Close()
	ok, traced := true, 0
	st.Scan(resultstore.Filter{}, func(i int, r resultstore.Row) bool {
		if !r.HasTrace() {
			return true
		}
		traced++
		blob, err := st.Trace(i)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silo-tracecheck: %s: campaign %d: INVALID: %v\n", path, r.Index, err)
			ok = false
			return true
		}
		stt, err := telemetry.ValidateChromeTrace(bytes.NewReader(blob))
		if err != nil {
			fmt.Fprintf(os.Stderr, "silo-tracecheck: %s: campaign %d: INVALID: %v\n", path, r.Index, err)
			ok = false
			return true
		}
		fmt.Printf("%s: campaign %d (%s/%s): OK — %d events, %d tracks, %d counter series\n",
			path, r.Index, r.Design, r.Workload, stt.Events, stt.Tracks, stt.Counters)
		return true
	})
	if traced == 0 {
		fmt.Printf("%s: no embedded traces (%d campaigns)\n", path, st.Count())
	}
	return ok
}
