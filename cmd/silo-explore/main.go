// Command silo-explore sweeps the Table II design space: a grid over
// the hardware knobs the paper fixes — Silo log-buffer entries, on-PM
// buffer line size, WPQ depth, cache geometry, core count — crossed
// with designs and workloads. Every grid point is one measured
// simulation (no crash injection, auditor off), executed by the pooled
// torture fleet with per-worker machine reuse, and the sweep ends with
// a Pareto-frontier report over throughput, media writes, and
// crash-flush energy.
//
// The sweep checkpoints to -shards binary result stores (-out base
// path), so a million-point grid survives kills and resumes without
// re-running finished points:
//
//	silo-explore -logbuf 10,20,40 -bufline 64,256 -wpq 16,64 \
//	    -out grid.srs -shards 4
//	# ... kill -9 mid-sweep ...
//	silo-explore -logbuf 10,20,40 -bufline 64,256 -wpq 16,64 \
//	    -out grid.srs -shards 4 -resume
//
// Merge the shards and render the frontier with silo-report:
//
//	silo-report -merge grid-all.srs grid-0.srs grid-1.srs grid-2.srs grid-3.srs
//	silo-report -pareto grid-all.srs
//
// Exit codes: 0 every point measured; 1 points failed to run;
// 2 configuration error; 3 infra-only failures; 130 interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/explore"
	"silo/internal/harness"
	"silo/internal/profiling"
)

var prof *profiling.Flags

func main() {
	var (
		designs   = flag.String("designs", "Silo", "comma-separated designs")
		workloads = flag.String("workloads", "Array,Hash,TPCC", "comma-separated workloads")
		cores     = flag.String("cores", "2", "comma-separated core counts")
		logbuf    = flag.String("logbuf", "20", "comma-separated Silo log-buffer entry counts")
		bufline   = flag.String("bufline", "256", "comma-separated on-PM buffer line sizes (bytes)")
		wpq       = flag.String("wpq", "64", "comma-separated WPQ depths per channel")
		cacheStr  = flag.String("cache", "32/256/8192", "comma-separated cache geometries, L1KB/L2KB/L3KB each")
		txns      = flag.Int("txns", 48, "transactions per grid point")
		seed      = flag.Int64("seed", 1, "base seed (point i runs with a seed derived from it)")

		out      = flag.String("out", "", "checkpoint base path (.srs); shards land at base-0.srs .. base-(N-1).srs")
		shards   = flag.Int("shards", 4, "number of store shards behind -out")
		resume   = flag.Bool("resume", false, "load the -out shards and skip already-measured points")
		parallel = flag.Int("parallel", 0, "concurrent points (0 = GOMAXPROCS)")
		wall     = flag.Duration("wall", 2*time.Minute, "per-point wall-clock watchdog (0 disables)")
		report   = flag.Bool("report", true, "print the Pareto frontier after the sweep")
	)
	prof = profiling.Register("silo-explore")
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-explore", showVersion)

	grid := explore.Grid{
		Designs:   splitCSV(*designs),
		Workloads: splitCSV(*workloads),
		Txns:      *txns,
		Seed:      *seed,
	}
	var err error
	if grid.Cores, err = intList(*cores); err != nil {
		fatalConfig(err)
	}
	if grid.LogBuf, err = intList(*logbuf); err != nil {
		fatalConfig(err)
	}
	if grid.BufLine, err = intList(*bufline); err != nil {
		fatalConfig(err)
	}
	if grid.WPQ, err = intList(*wpq); err != nil {
		fatalConfig(err)
	}
	for _, s := range splitCSV(*cacheStr) {
		g, err := explore.ParseCacheGeom(s)
		if err != nil {
			fatalConfig(err)
		}
		grid.Caches = append(grid.Caches, g)
	}
	if err := grid.Normalize(); err != nil {
		fatalConfig(err)
	}
	if *shards < 1 {
		fatalConfig(fmt.Errorf("silo-explore: -shards must be at least 1"))
	}

	cfg := harness.TortureConfig{
		Seed:      *seed,
		Campaigns: grid.Size(),
		Parallel:  *parallel,
		Make:      grid.Campaign,
		Run:       grid.RunPoint,
	}
	if *wall == 0 {
		cfg.WallBudget = -1
	} else {
		cfg.WallBudget = *wall
	}
	fmt.Fprintf(os.Stderr, "silo-explore: %d grid points (%d designs × %d workloads × %d knob combinations)\n",
		grid.Size(), len(grid.Designs), len(grid.Workloads),
		grid.Size()/(len(grid.Designs)*len(grid.Workloads)))

	var sink *explore.ShardedSink
	exit := func(code int) {
		if sink != nil {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "silo-explore: sealing shards:", err)
				if code == 0 {
					code = 2
				}
			}
			sink = nil
		}
		prof.Stop()
		os.Exit(code)
	}
	if err := prof.Start(); err != nil {
		fatalConfig(err)
	}

	if *resume {
		if *out == "" {
			fatalConfig(fmt.Errorf("silo-explore: -resume needs -out"))
		}
		// Must happen before the sinks open: store sinks truncate the
		// temp segments the resume records may live in.
		recs, err := explore.LoadShards(*out, *shards)
		if err != nil {
			fatalConfig(fmt.Errorf("loading shards of %s: %w", *out, err))
		}
		cfg.Resume = recs
		fmt.Fprintf(os.Stderr, "silo-explore: resuming, %d points already measured\n", len(recs))
	}
	if *out != "" {
		s, err := explore.OpenShardedSink(*out, *shards)
		if err != nil {
			fatalConfig(err)
		}
		sink = s
		// Re-emit resumed records so every sealed shard is complete.
		if err := sink.Seed(cfg.Resume); err != nil {
			fatalConfig(err)
		}
		cfg.Sink = sink
		cfg.OnSinkError = func(err error) {
			fmt.Fprintln(os.Stderr, "silo-explore: writing record:", err)
		}
	}

	// First SIGINT drains the fleet; a second aborts immediately.
	stop := make(chan struct{})
	cfg.Stop = stop
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-explore: draining (points in flight will finish; interrupt again to abort)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-explore: aborted")
		os.Exit(130)
	}()

	var frontier []harness.Record
	if *report {
		cfg.OnRecord = func(r harness.Record) { frontier = append(frontier, r) }
	}
	res, err := harness.Torture(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-explore:", err)
		exit(2)
	}
	fmt.Print(res.Summary())
	if *report && !res.Interrupted {
		// Resumed points bypass OnRecord; fold them back in, in index
		// order, so the frontier always covers the whole grid.
		for i := 0; i < grid.Size(); i++ {
			if r, ok := cfg.Resume[i]; ok {
				frontier = append(frontier, r)
			}
		}
		fmt.Print(explore.Report(frontier))
	}
	switch {
	case !res.Ok():
		exit(1)
	case res.Interrupted:
		fmt.Fprintf(os.Stderr, "silo-explore: interrupted; resume by re-running with -resume\n")
		exit(130)
	case len(res.Infra) > 0:
		exit(3)
	}
	exit(0)
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func intList(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("silo-explore: bad list value %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatalConfig(err error) {
	fmt.Fprintln(os.Stderr, "silo-explore:", err)
	prof.Stop()
	os.Exit(2)
}
