// Command silo-torture runs crash-storm fault-injection campaigns:
// every campaign picks a (design, workload) pair and a seeded crash
// schedule — an op-, cycle-, commit-window- or overflow-triggered power
// failure, a bounded crash-flush energy budget that can tear the last
// record at word granularity, and optional mid-recovery re-crashes —
// then recovers and verifies every transactional word against the
// machine's golden committed shadow.
//
// Sweep mode:
//
//	silo-torture -seed 1 -campaigns 200 -designs Base,FWB,MorLog,LAD,Silo
//
// Repro mode (replay one schedule, e.g. from a failure's repro line):
//
//	silo-torture -designs Silo -workloads Hash -cores 2 -txns 48 \
//	    -seed 12345 -plan "trigger=commit,at=3,budget=64,tear=1,recrash=5"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"silo/internal/fault"
	"silo/internal/harness"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "sweep seed: campaign schedules derive from it deterministically")
		campaigns = flag.Int("campaigns", 200, "number of campaigns")
		offset    = flag.Int("offset", 0, "first campaign index (repro campaign k alone: -offset k -campaigns 1)")
		designs   = flag.String("designs", strings.Join(harness.DesignNames(), ","), "comma-separated designs")
		workloads = flag.String("workloads", "Array,Hash,TPCC", "comma-separated workloads")
		cores     = flag.Int("cores", 2, "simulated cores per campaign")
		txns      = flag.Int("txns", 48, "transaction target per campaign")
		strict    = flag.Bool("strict", false, "admit beyond-spec battery faults (commit tuples and undo logs can be lost; mismatches expected)")
		flips     = flag.Bool("flips", false, "admit log media bit flips (detected by CRCs, but data loss possible)")
		shrink    = flag.Bool("shrink", true, "shrink failing campaigns to minimal reproducers")
		planStr   = flag.String("plan", "", "replay exactly this crash schedule instead of deriving one per campaign")
	)
	flag.Parse()

	if len(splitCSV(*designs)) == 0 {
		*designs = strings.Join(harness.DesignNames(), ",")
	}
	if len(splitCSV(*workloads)) == 0 {
		*workloads = "Array,Hash,TPCC"
	}
	cfg := harness.TortureConfig{
		Seed:          *seed,
		Campaigns:     *campaigns,
		Offset:        *offset,
		Designs:       splitCSV(*designs),
		Workloads:     splitCSV(*workloads),
		Cores:         *cores,
		Txns:          *txns,
		AllowStrict:   *strict,
		AllowBitFlips: *flips,
		Shrink:        *shrink,
	}

	if *planStr != "" {
		plan, err := fault.ParsePlan(*planStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silo-torture:", err)
			os.Exit(2)
		}
		if plan.Seed == 0 {
			plan.Seed = *seed
		}
		c := harness.Campaign{Spec: harness.Spec{
			Design:   cfg.Designs[0],
			Workload: cfg.Workloads[0],
			Cores:    cfg.Cores,
			Txns:     cfg.Txns,
			Seed:     *seed,
		}, Plan: plan}
		out := harness.RunCampaign(c)
		fmt.Printf("campaign: %s on %s, plan %s\n", c.Spec.Design, c.Spec.Workload, plan.String())
		fmt.Printf("  crashed mid-run: %v, committed: %d\n", out.MidRun, out.Commits)
		fmt.Printf("  recovery: %d tx, %d redo, %d undo, %d quarantined, %d torn, %d dropped, %d re-crashes\n",
			out.Report.CommittedTx, out.Report.RedoApplied, out.Report.UndoApplied,
			out.Report.Quarantined, out.Torn, out.Dropped, out.Restarts)
		if out.Err != nil {
			fmt.Fprintln(os.Stderr, "silo-torture:", out.Err)
			os.Exit(1)
		}
		if len(out.Mismatches) == 0 {
			fmt.Println("  atomic durability HELD")
			return
		}
		fmt.Printf("  atomic durability VIOLATED: %d mismatches\n", len(out.Mismatches))
		for i, m := range out.Mismatches {
			if i == 10 {
				fmt.Println("    ...")
				break
			}
			fmt.Println("   ", m)
		}
		os.Exit(1)
	}

	res, err := harness.Torture(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-torture:", err)
		os.Exit(2)
	}
	fmt.Print(res.Summary())
	if !res.Ok() {
		os.Exit(1)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
