// Command silo-torture runs crash-storm fault-injection campaigns:
// every campaign picks a (design, workload) pair and a seeded crash
// schedule — an op-, cycle-, commit-window- or overflow-triggered power
// failure, a bounded crash-flush energy budget that can tear the last
// record at word granularity, and optional mid-recovery re-crashes —
// then recovers and verifies every transactional word against the
// machine's golden committed shadow. The runtime invariant auditor is
// on inside every campaign unless -audit=false.
//
// Sweep mode (resumable fleet):
//
//	silo-torture -seed 1 -campaigns 5000 -out sweep.jsonl
//	# ... SIGINT drains the fleet and prints the resume command ...
//	silo-torture -seed 1 -campaigns 5000 -out sweep.jsonl -resume sweep.jsonl
//
// The checkpoint format follows the -out extension: .srs selects the
// mmap-scannable binary result store (internal/resultstore; query it
// with silo-report -torture), anything else the JSONL stream. A store
// streams into <out>.tmp and is sealed + atomically renamed on exit;
// a killed fleet leaves the temp segment, and -resume <out>.srs
// recovers its sealed prefix byte-exactly. With -telemetry-dir set,
// failing campaigns' Chrome traces are also embedded into the store,
// compressed, next to their records.
//
// Repro mode (replay one schedule, e.g. from a failure's repro line):
//
//	silo-torture -designs Silo -workloads Hash -cores 2 -txns 48 \
//	    -seed 12345 -plan "trigger=commit,at=3,budget=64,tear=1,recrash=5"
//
// Exit codes: 0 all campaigns verified clean; 1 atomic durability
// violated (or an audit invariant fired); 2 configuration error;
// 3 infra-only failures (watchdog kills, host flakes — no durability
// verdict); 130 interrupted before completion.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/profiling"
	"silo/internal/sim"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		seed      = flag.Int64("seed", 1, "sweep seed: campaign schedules derive from it deterministically")
		campaigns = flag.Int("campaigns", 200, "number of campaigns")
		offset    = flag.Int("offset", 0, "first campaign index (repro campaign k alone: -offset k -campaigns 1)")
		designs   = flag.String("designs", strings.Join(harness.DesignNames(), ","), "comma-separated designs")
		workloads = flag.String("workloads", "Array,Hash,TPCC", "comma-separated workloads")
		cores     = flag.Int("cores", 2, "simulated cores per campaign")
		txns      = flag.Int("txns", 48, "transaction target per campaign")
		strict    = flag.Bool("strict", false, "admit beyond-spec battery faults (commit tuples and undo logs can be lost; mismatches expected)")
		flips     = flag.Bool("flips", false, "admit log media bit flips (detected by CRCs, but data loss possible)")
		shrink    = flag.Bool("shrink", true, "shrink failing campaigns to minimal reproducers")
		planStr   = flag.String("plan", "", "replay exactly this crash schedule instead of deriving one per campaign")

		audit     = flag.Bool("audit", true, "runtime invariant auditor inside every campaign")
		out       = flag.String("out", "", "record every completed campaign to this file (.srs = binary result store, else JSONL)")
		resume    = flag.String("resume", "", "checkpoint from a previous run (.srs or JSONL); completed campaign indices are not re-executed")
		wall      = flag.Duration("wall", 2*time.Minute, "per-campaign wall-clock watchdog (0 disables)")
		maxCycles = flag.Int64("maxcycles", 1<<31, "per-campaign sim-cycle watchdog (0 disables)")
		retries   = flag.Int("retries", 2, "retries for infra failures (watchdog kills, host flakes)")
		parallel  = flag.Int("parallel", 0, "concurrent campaigns (0 = GOMAXPROCS)")

		traceDir  = flag.String("telemetry-dir", "", "re-run failing campaigns with telemetry and write DIR/campaign-<idx>.trace.json (Perfetto-loadable)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live fleet profiling")
	)
	prof = profiling.Register("silo-torture")
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-torture", showVersion)

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "silo-torture: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "silo-torture: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}
	// exit seals the checkpoint sink and flushes the profiles before
	// terminating: os.Exit skips deferred functions, so every exit path
	// below must go through it. Sealing even on a drained interrupt
	// means a .srs store is always published valid; only a hard kill
	// leaves the (recoverable) temp segment.
	var sink *harness.CheckpointSink
	exit := func(code int) {
		if sink != nil {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "silo-torture: sealing checkpoint:", err)
				if code == 0 {
					code = 2
				}
			}
			sink = nil
		}
		prof.Stop()
		os.Exit(code)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}

	if len(splitCSV(*designs)) == 0 {
		*designs = strings.Join(harness.DesignNames(), ",")
	}
	if len(splitCSV(*workloads)) == 0 {
		*workloads = "Array,Hash,TPCC"
	}
	cfg := harness.TortureConfig{
		Seed:          *seed,
		Campaigns:     *campaigns,
		Offset:        *offset,
		Designs:       splitCSV(*designs),
		Workloads:     splitCSV(*workloads),
		Cores:         *cores,
		Txns:          *txns,
		AllowStrict:   *strict,
		AllowBitFlips: *flips,
		Shrink:        *shrink,
		Parallel:      *parallel,
		DisableAudit:  !*audit,
		TraceDir:      *traceDir,
	}
	if *wall == 0 {
		cfg.WallBudget = -1
	} else {
		cfg.WallBudget = *wall
	}
	if *maxCycles == 0 {
		cfg.MaxCycles = -1
	} else {
		cfg.MaxCycles = sim.Cycle(*maxCycles)
	}
	if *retries >= 0 {
		cfg.Retries = *retries
	}
	if cfg.Retries == 0 {
		cfg.Retries = -1 // harness: <0 means no retries, 0 means default
	}

	if *planStr != "" {
		exit(reproMode(cfg, *planStr, *seed))
	}

	if *resume != "" {
		// Must happen before the sink opens: a store sink truncates the
		// temp segment the resume records may live in.
		recs, err := harness.LoadRecords(*resume)
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *resume, err))
		}
		cfg.Resume = recs
		fmt.Fprintf(os.Stderr, "silo-torture: resuming, %d campaigns already done\n", len(recs))
	}
	if *out != "" {
		s, err := harness.OpenCheckpointSink(*out)
		if err != nil {
			fatal(err)
		}
		sink = s
		// A store re-emits resumed records so the sealed result is
		// complete (JSONL keeps its history in the file; no-op there).
		if err := sink.Seed(cfg.Resume); err != nil {
			fatal(err)
		}
		cfg.Sink = sink
		cfg.OnSinkError = func(err error) {
			fmt.Fprintln(os.Stderr, "silo-torture: writing record:", err)
		}
	}

	// First SIGINT drains the fleet (in-flight campaigns finish, queued
	// ones are skipped); a second one exits immediately.
	stop := make(chan struct{})
	cfg.Stop = stop
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-torture: draining (campaigns in flight will finish; interrupt again to abort)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-torture: aborted")
		os.Exit(130)
	}()

	res, err := harness.Torture(cfg)
	if err != nil {
		fatal(err)
	}
	if sink != nil {
		// Failing campaigns re-ran with telemetry (when -telemetry-dir
		// is set); embed those traces into the store, compressed, next
		// to their records.
		for _, f := range res.Failures {
			if f.TracePath == "" {
				continue
			}
			blob, err := os.ReadFile(f.TracePath)
			if err == nil {
				err = sink.AttachTrace(f.Outcome.Campaign.Index, blob)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "silo-torture: embedding trace:", err)
			}
		}
	}
	fmt.Print(res.Summary())
	switch {
	case !res.Ok():
		exit(1)
	case res.Interrupted:
		resumeCmd := resumeCommand(*out)
		fmt.Fprintf(os.Stderr, "silo-torture: interrupted; resume with:\n  %s\n", resumeCmd)
		exit(130)
	case len(res.Infra) > 0:
		exit(3)
	}
	exit(0)
}

// resumeCommand renders the exact command that continues an interrupted
// sweep: the original arguments plus -resume pointing at the stream.
func resumeCommand(out string) string {
	args := make([]string, 0, len(os.Args)+2)
	args = append(args, os.Args...)
	if out == "" {
		return strings.Join(args, " ") + "   # re-run (no -out stream was kept)"
	}
	has := false
	for _, a := range args[1:] {
		if a == "-resume" || strings.HasPrefix(a, "-resume=") {
			has = true
		}
	}
	if !has {
		args = append(args, "-resume", out)
	}
	return strings.Join(args, " ")
}

func reproMode(cfg harness.TortureConfig, planStr string, seed int64) int {
	plan, err := fault.ParsePlan(planStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-torture:", err)
		return 2
	}
	if plan.Seed == 0 {
		plan.Seed = seed
	}
	c := harness.Campaign{Spec: harness.Spec{
		Design:       cfg.Designs[0],
		Workload:     cfg.Workloads[0],
		Cores:        cfg.Cores,
		Txns:         cfg.Txns,
		Seed:         seed,
		DisableAudit: cfg.DisableAudit,
	}, Plan: plan}
	out := harness.RunCampaignContained(c)
	fmt.Printf("campaign: %s on %s, plan %s\n", c.Spec.Design, c.Spec.Workload, plan.String())
	fmt.Printf("  crashed mid-run: %v, committed: %d\n", out.MidRun, out.Commits)
	fmt.Printf("  recovery: %d tx, %d redo, %d undo, %d quarantined, %d torn, %d dropped, %d re-crashes\n",
		out.Report.CommittedTx, out.Report.RedoApplied, out.Report.UndoApplied,
		out.Report.Quarantined, out.Torn, out.Dropped, out.Restarts)
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, "silo-torture:", out.Err)
		if out.Invariant != "" {
			fmt.Fprintf(os.Stderr, "  invariant: %s\n", out.Invariant)
			for _, e := range out.Trail {
				fmt.Fprintf(os.Stderr, "  trail: %s\n", e)
			}
		}
		if harness.IsInfra(out.Err) {
			return 3
		}
		return 1
	}
	if len(out.Mismatches) == 0 {
		fmt.Println("  atomic durability HELD")
		return 0
	}
	fmt.Printf("  atomic durability VIOLATED: %d mismatches\n", len(out.Mismatches))
	for i, m := range out.Mismatches {
		if i == 10 {
			fmt.Println("    ...")
			break
		}
		fmt.Println("   ", m)
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-torture:", err)
	prof.Stop()
	os.Exit(2)
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
