package main

import (
	"strings"
	"testing"

	"silo/internal/cluster"
)

func TestValidateReplication(t *testing.T) {
	cases := []struct {
		name     string
		nodes    int
		replicas int
		mode     string
		wantErr  string // substring; "" = valid
		wantMode cluster.ReplicationMode
	}{
		{name: "auto", nodes: 4, replicas: 0, mode: "sync", wantMode: cluster.ReplSync},
		{name: "r3 of 4", nodes: 4, replicas: 3, mode: "sync", wantMode: cluster.ReplSync},
		{name: "full ring", nodes: 3, replicas: 3, mode: "async", wantMode: cluster.ReplAsync},
		{name: "default mode", nodes: 4, replicas: 2, mode: "", wantMode: cluster.ReplSync},
		{name: "too many replicas", nodes: 3, replicas: 4, mode: "sync", wantErr: "exceeds the 3-node cluster"},
		{name: "default nodes bound", nodes: 0, replicas: 5, mode: "sync", wantErr: "exceeds the 4-node cluster"},
		{name: "negative replicas", nodes: 4, replicas: -1, mode: "sync", wantErr: "must be >= 0"},
		{name: "unknown mode", nodes: 4, replicas: 2, mode: "quorum", wantErr: "quorum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := validateReplication(tc.nodes, tc.replicas, tc.mode)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got nil", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				if strings.ContainsRune(err.Error(), '\n') {
					t.Fatalf("error spans lines: %q", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if m != tc.wantMode {
				t.Fatalf("mode = %v, want %v", m, tc.wantMode)
			}
		})
	}
}
