// Command silo-cluster runs the simulated sharded PM key-value service:
// N single-core Silo machines behind a consistent-hash router, a
// deterministic network cost model (hop latency, timeouts, bounded
// retries with seeded backoff, per-node queues with overload shedding),
// Zipfian multi-tenant load, and cluster-scope fault injection — node
// power failures with bounded-energy log flushes, recovery under load
// while the router fails over, and crash storms. Every run verifies the
// cluster-level golden shadow (acked writes survive, uncommitted writes
// roll back) plus each node's machine-level golden shadow.
//
// Scenario mode (one explicit run, availability report):
//
//	silo-cluster -scenario steady
//	silo-cluster -scenario rolling -nodes 4 -requests 4000
//	silo-cluster -scenario diurnal -telemetry cluster.trace.json
//
// Sweep mode (resumable fleet; default):
//
//	silo-cluster -seed 1 -campaigns 1000 -out cluster.jsonl
//	# ... SIGINT drains the fleet ...
//	silo-cluster -seed 1 -campaigns 1000 -out cluster.jsonl -resume cluster.jsonl
//
// Exit codes: 0 clean; 1 durability violated (shadow divergence);
// 2 configuration error; 3 infra-only failures; 130 interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/cluster"
	"silo/internal/fault"
	"silo/internal/harness"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "", "run one explicit scenario instead of a sweep: steady, rolling, storm, diurnal")
		seed     = flag.Int64("seed", 1, "deterministic seed for load, ring, and crash schedules")
		design   = flag.String("design", "Silo", "logging design on every node")
		nodes    = flag.Int("nodes", 4, "shard servers")
		requests = flag.Int("requests", 2000, "client requests per run")
		tenants  = flag.Int("tenants", 3, "independent client populations")
		readPct  = flag.Int("reads", 60, "base read percentage of the load mix")
		replicas = flag.Int("replicas", 0, "replica-set size R (0 = auto: 1 in scenario mode, seed-derived 1-3 per sweep campaign)")
		replMode = flag.String("replication", "sync", "replication mode for R>1: sync (ack after all live replicas) or async (bounded lag, losses counted)")
		planStr  = flag.String("plan", "", "explicit cluster fault schedule (scenario mode), e.g. \"storm=1@200000;node=budget=256,tear=1\"")
		telOut   = flag.String("telemetry", "", "write a Perfetto-loadable trace of the run to this file (scenario mode)")

		campaigns = flag.Int("campaigns", 200, "sweep size (sweep mode)")
		offset    = flag.Int("offset", 0, "first campaign index (repro campaign k alone: -offset k -campaigns 1)")
		designs   = flag.String("designs", strings.Join(harness.DesignNames(), ","), "comma-separated designs for the sweep")
		shrink    = flag.Bool("shrink", true, "shrink failing campaigns to minimal reproducers")
		audit     = flag.Bool("audit", true, "runtime invariant auditor inside every node")
		out       = flag.String("out", "", "record every completed campaign to this file (.srs = binary result store, else JSONL)")
		resume    = flag.String("resume", "", "checkpoint from a previous run (.srs or JSONL); completed campaigns are not re-executed")
		wall      = flag.Duration("wall", 2*time.Minute, "per-campaign wall-clock watchdog (0 disables)")
		retries   = flag.Int("retries", 2, "retries for infra failures")
		parallel  = flag.Int("parallel", 0, "concurrent campaigns (0 = GOMAXPROCS)")
	)
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-cluster", showVersion)

	// Validate the replication shape before any work: a replica set
	// larger than the cluster or an unknown mode is a config error, not
	// something to discover one campaign deep into a sweep.
	mode, err := validateReplication(*nodes, *replicas, *replMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-cluster:", err)
		os.Exit(2)
	}

	if *scenario != "" {
		os.Exit(scenarioMode(*scenario, *seed, *design, *nodes, *requests, *tenants, *readPct, *replicas, mode, *planStr, *telOut))
	}
	os.Exit(sweepMode(sweepFlags{
		seed: *seed, campaigns: *campaigns, offset: *offset,
		designs: splitCSV(*designs), nodes: *nodes, requests: *requests,
		replicas: *replicas, mode: mode,
		shrink: *shrink, audit: *audit, out: *out, resume: *resume,
		wall: *wall, retries: *retries, parallel: *parallel,
	}))
}

// validateReplication checks the replication flags against the cluster
// shape. replicas 0 is "auto" and always valid; nodes <= 0 falls back
// to the cluster default before the bound check.
func validateReplication(nodes, replicas int, mode string) (cluster.ReplicationMode, error) {
	m, err := cluster.ParseReplicationMode(mode)
	if err != nil {
		return m, err
	}
	if replicas < 0 {
		return m, fmt.Errorf("-replicas %d: must be >= 0 (0 = auto)", replicas)
	}
	if nodes <= 0 {
		nodes = 4 // cluster.Config default
	}
	if replicas > nodes {
		return m, fmt.Errorf("-replicas %d exceeds the %d-node cluster: a replica set cannot be larger than the ring", replicas, nodes)
	}
	return m, nil
}

// scenarioPlan derives each named scenario's crash schedule from the
// cluster shape: rolling crashes every node once, staggered across the
// load; storm takes two nodes down nearly together then re-crashes the
// first; steady and diurnal are fault-free unless -plan adds one.
func scenarioPlan(name string, cfg *cluster.Config) error {
	horizon := cfg.LoadHorizon()
	tmpl := fault.Plan{FlushBudget: 256, TearWords: true, RecrashEvery: 64, Seed: cfg.Seed}
	switch name {
	case "steady":
	case "rolling":
		var crashes []fault.NodeCrash
		for n := 0; n < cfg.Nodes; n++ {
			at := horizon * sim.Cycle(n+1) / sim.Cycle(cfg.Nodes+1)
			crashes = append(crashes, fault.NodeCrash{Node: n, At: at})
		}
		cfg.Plan = &fault.ClusterPlan{Crashes: crashes, Node: tmpl}
	case "storm":
		cfg.Plan = &fault.ClusterPlan{
			Crashes: []fault.NodeCrash{
				{Node: 0, At: horizon / 3},
				{Node: 1 % cfg.Nodes, At: horizon/3 + horizon/20},
				{Node: 0, At: horizon * 3 / 4},
			},
			Node: tmpl,
		}
	case "diurnal":
		cfg.DiurnalAmp = 0.6
		cfg.DiurnalPeriod = cfg.LoadHorizon() / 2
		// One crash at the first load peak, where failover hurts most.
		cfg.Plan = &fault.ClusterPlan{
			Crashes: []fault.NodeCrash{{Node: 0, At: cfg.LoadHorizon() / 4}},
			Node:    tmpl,
		}
	default:
		return fmt.Errorf("unknown scenario %q (steady, rolling, storm, diurnal)", name)
	}
	return nil
}

func scenarioMode(name string, seed int64, design string, nodes, requests, tenants, readPct, replicas int, mode cluster.ReplicationMode, planStr, telOut string) int {
	cfg := cluster.Config{
		Seed: seed, Design: design, Nodes: nodes, Requests: requests,
		Tenants: tenants, ReadPercent: readPct,
		Replicas: replicas, Replication: mode,
	}
	if err := scenarioPlan(name, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "silo-cluster:", err)
		return 2
	}
	if planStr != "" {
		plan, err := fault.ParseClusterPlan(planStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silo-cluster:", err)
			return 2
		}
		cfg.Plan = &plan
	}
	var (
		ct     *telemetry.ChromeTrace
		traceF *os.File
	)
	if telOut != "" {
		f, err := os.Create(telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silo-cluster:", err)
			return 2
		}
		traceF = f
		ct = telemetry.NewChromeTrace(f)
		cfg.Telemetry = telemetry.NewRecorder(ct)
	}

	res := cluster.Run(cfg)
	if ct != nil {
		if err := ct.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "silo-cluster:", err)
		}
		if err := traceF.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "silo-cluster:", err)
		}
		fmt.Fprintf(os.Stderr, "silo-cluster: timeline written to %s (open at ui.perfetto.dev)\n", telOut)
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "silo-cluster:", res.Err)
		if res.Infra {
			return 3
		}
		return 1
	}
	printReport(name, res)
	if len(res.Divergences) > 0 {
		return 1
	}
	return 0
}

// us renders simulated cycles as microseconds at the 2 GHz model clock.
func us(c sim.Cycle) float64 { return float64(c) / 2000 }

func printReport(name string, res cluster.Result) {
	fmt.Printf("scenario=%s design=%s nodes=%d\n", name, res.Design, res.Nodes)
	fmt.Printf("  requests generated   %12d  (%d gets, %d puts)\n", res.Generated, res.Gets, res.Puts)
	fmt.Printf("  acked                %12d  (%.2f%% available)\n", res.Acked, 100*res.Available())
	fmt.Printf("  failed               %12d  (retry budget exhausted)\n", res.Failed)
	fmt.Printf("  committed puts       %12d  (incl. committed-but-unacked)\n", res.CommittedPuts)
	fmt.Printf("  simulated end        %12d  cycles (%.1f µs)\n", res.FinalCycle, us(res.FinalCycle))
	fmt.Println("latency (acked requests):")
	fmt.Printf("  p50                  %12d  cycles (%.1f µs)\n", res.Latency.Percentile(50), us(sim.Cycle(res.Latency.Percentile(50))))
	fmt.Printf("  p99                  %12d  cycles (%.1f µs)\n", res.Latency.Percentile(99), us(sim.Cycle(res.Latency.Percentile(99))))
	fmt.Printf("  max                  %12d  cycles (%.1f µs)\n", res.Latency.Max(), us(sim.Cycle(res.Latency.Max())))
	fmt.Println("network:")
	fmt.Printf("  timeouts             %12d\n", res.Timeouts)
	fmt.Printf("  retries              %12d\n", res.Retries)
	fmt.Printf("  shed (queue full)    %12d\n", res.Sheds)
	fmt.Printf("  fast-fails (down)    %12d\n", res.FastFails)
	fmt.Printf("  connection resets    %12d\n", res.Resets)
	fmt.Printf("  late responses       %12d\n", res.Late)

	if res.Replicas > 1 {
		fmt.Printf("replication: R=%d mode=%s\n", res.Replicas, res.Mode)
		fmt.Printf("  repl msgs sent       %12d  (%d applied, %d stale, %d dropped)\n",
			res.ReplSent, res.ReplApplied, res.ReplStale, res.ReplDropped)
		fmt.Printf("  promotions           %12d\n", res.Promotions)
		fmt.Printf("  resync entries       %12d\n", res.ResyncEntries)
		if res.Mode == cluster.ReplAsync || res.AckedLost > 0 {
			fmt.Printf("  acked writes lost    %12d  (bounded-async exposure)\n", res.AckedLost)
		} else {
			fmt.Printf("  acked writes lost    %12d\n", res.AckedLost)
		}
	}

	if res.Crashes > 0 {
		fmt.Printf("faults: %d node crashes, %d torn flush records, %d dropped, %d mid-recovery re-crashes\n",
			res.Crashes, res.Torn, res.Dropped, res.RecoveryRestarts)
		fmt.Printf("  recovery replayed %d records, %d redo + %d undo writes, %d tx\n",
			res.Recovery.TotalRecords, res.Recovery.RedoApplied, res.Recovery.UndoApplied, res.Recovery.CommittedTx)
		t := stats.NewTable("unavailability windows", "node", "strikes", "down at", "serving again",
			"window (µs)", "detect (µs)", "promote (µs)", "resync (µs)", "owner outage (µs)", "commits elsewhere")
		for _, w := range res.Windows {
			serving := fmt.Sprintf("%d", w.ServingAt)
			if !w.Closed {
				serving = "(load ended)"
			}
			promote, resync := "-", "-"
			if res.Replicas > 1 {
				promote = fmt.Sprintf("%.1f", us(w.Promote()))
				resync = fmt.Sprintf("%.1f", us(w.Resync()))
			}
			t.AddRow(fmt.Sprintf("%d", w.Node), fmt.Sprintf("%d", w.Strikes),
				fmt.Sprintf("%d", w.DownAt), serving,
				fmt.Sprintf("%.1f", us(w.Width())), fmt.Sprintf("%.1f", us(w.Detect())),
				promote, resync,
				fmt.Sprintf("%.1f", us(w.OwnerOutage())), fmt.Sprintf("%d", w.CommitsElsewhere))
		}
		fmt.Print(t.String())
	}

	t := stats.NewTable("per-node", "node", "served", "commits", "crashes")
	for i, n := range res.PerNode {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", n.Served), fmt.Sprintf("%d", n.Commits), fmt.Sprintf("%d", n.Crashes))
	}
	fmt.Print(t.String())

	if len(res.Divergences) > 0 {
		fmt.Printf("cluster durability VIOLATED: %d divergences\n", len(res.Divergences))
		for i, d := range res.Divergences {
			if i == 10 {
				fmt.Println("  ...")
				break
			}
			fmt.Println(" ", d)
		}
	} else {
		fmt.Println("cluster durability HELD (acked writes survived; uncommitted writes rolled back)")
	}
}

type sweepFlags struct {
	seed            int64
	campaigns       int
	offset          int
	designs         []string
	nodes, requests int
	replicas        int
	mode            cluster.ReplicationMode
	shrink, audit   bool
	out, resume     string
	wall            time.Duration
	retries         int
	parallel        int
}

func sweepMode(f sweepFlags) int {
	cfg := cluster.TortureConfig{
		Seed:         f.seed,
		Campaigns:    f.campaigns,
		Offset:       f.offset,
		Designs:      f.designs,
		Nodes:        f.nodes,
		Requests:     f.requests,
		Replicas:     f.replicas,
		Replication:  f.mode,
		Shrink:       f.shrink,
		DisableAudit: !f.audit,
		Parallel:     f.parallel,
	}
	if f.wall == 0 {
		cfg.WallBudget = -1
	} else {
		cfg.WallBudget = f.wall
	}
	if f.retries >= 0 {
		cfg.Retries = f.retries
	}
	if cfg.Retries == 0 {
		cfg.Retries = -1 // harness: <0 means no retries, 0 means default
	}

	if f.resume != "" {
		// Load before the sink opens: a .srs sink truncates the temp
		// segment the resume records may live in.
		recs, err := harness.LoadRecords(f.resume)
		if err != nil {
			return fatal(fmt.Errorf("reading %s: %w", f.resume, err))
		}
		cfg.Resume = recs
		fmt.Fprintf(os.Stderr, "silo-cluster: resuming, %d campaigns already done\n", len(recs))
	}
	if f.out != "" {
		sink, err := harness.OpenCheckpointSink(f.out)
		if err != nil {
			return fatal(err)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "silo-cluster: sealing checkpoint:", err)
			}
		}()
		if err := sink.Seed(cfg.Resume); err != nil {
			return fatal(err)
		}
		cfg.Sink = sink
		cfg.OnSinkError = func(err error) {
			fmt.Fprintln(os.Stderr, "silo-cluster: writing record:", err)
		}
	}

	// First SIGINT drains the fleet; a second one exits immediately.
	stop := make(chan struct{})
	cfg.Stop = stop
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-cluster: draining (campaigns in flight will finish; interrupt again to abort)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "silo-cluster: aborted")
		os.Exit(130)
	}()

	res, err := cluster.Torture(cfg)
	if err != nil {
		return fatal(err)
	}
	fmt.Print(res.Summary())
	switch {
	case !res.Ok():
		return 1
	case res.Interrupted:
		fmt.Fprintf(os.Stderr, "silo-cluster: interrupted; resume with the same command plus -resume %s\n", f.out)
		return 130
	case len(res.Infra) > 0:
		return 3
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "silo-cluster:", err)
	return 2
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
