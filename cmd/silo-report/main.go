// Command silo-report runs the full evaluation suite and emits a single
// self-contained Markdown report — every paper table/figure plus the
// extension studies — suitable for committing next to EXPERIMENTS.md or
// attaching to a regression ticket.
//
// Usage:
//
//	silo-report -txns 1250 -o report.md
//
// With -torture it instead summarizes a torture/cluster sweep's JSONL
// checkpoint stream (as written by silo-torture/silo-cluster -out). The
// loader is strict: an empty stream or a corrupt record mid-file is a
// clear error and a nonzero exit; only a torn final line — an
// interrupted writer — is tolerated, and called out:
//
//	silo-report -torture sweep.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/harness"
	"silo/internal/stats"
)

func main() {
	var (
		txns    = flag.Int("txns", 600, "transactions per core (grid) / total (others)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		out     = flag.String("o", "", "output file (default stdout)")
		torture = flag.String("torture", "", "summarize this torture/cluster JSONL checkpoint stream instead of running the suite")
	)
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-report", showVersion)

	if *torture != "" {
		os.Exit(tortureReport(*torture))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	section := func(title string) {
		fmt.Fprintf(w, "\n## %s\n\n", title)
	}
	table := func(t *stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "```\n%s```\n", t)
	}

	fmt.Fprintf(w, "# Silo reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s · seed %d · %d txns/core (grid)\n",
		time.Now().UTC().Format(time.RFC3339), *seed, *txns)

	section("System configuration (Table II)")
	table(harness.ConfigTable(), nil)
	section("Hardware overhead (Table I)")
	table(harness.Table1(0, 8), nil)
	section("Battery requirements (Table IV)")
	table(harness.Table4(8, 0), nil)

	section("Write size per transaction (Fig. 4)")
	table(harness.Fig4(*txns, *seed))

	section("Write traffic and throughput (Figs. 11–12)")
	coresList := []int{1, 8}
	fmt.Fprintln(os.Stderr, "silo-report: running the design×workload grid...")
	grid, err := harness.Grid(coresList, *txns, *seed)
	if err != nil {
		fatal(err)
	}
	for _, t := range harness.Fig11(grid, coresList) {
		table(t, nil)
	}
	for _, t := range harness.Fig12(grid, coresList) {
		table(t, nil)
	}

	section("On-chip log reduction (Fig. 13)")
	table(harness.Fig13(*txns, *seed))

	section("Large transactions (Fig. 14)")
	thr, wr, err := harness.Fig14(4, *txns, *seed)
	if err != nil {
		fatal(err)
	}
	table(thr, nil)
	table(wr, nil)

	section("Log buffer latency (Fig. 15)")
	table(harness.Fig15(4, *txns, *seed, nil))

	section("Ordering constraints (§II-D, extension)")
	table(harness.Ordering("Btree", 2, *txns, *seed))

	section("Commit latency distributions (extension)")
	table(harness.Latency("Btree", 2, *txns, *seed))

	section("Execution timeline (telemetry extension)")
	sampler, _, err := harness.Timeline(harness.Spec{
		Design: "Silo", Workload: "Btree", Cores: 2, Txns: *txns, Seed: *seed,
		DisableAudit: true,
	}, 20_000)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "Silo on Btree, 2 cores, 20 k-cycle windows — where commits, evictions,\noverflows and WPQ pressure landed inside the run:\n\n")
	fmt.Fprintf(w, "```\n%s```\n", sampler.Table())

	section("eADR software logging (§II-C, extension)")
	table(harness.EADRStudy("YCSB", 2, *txns, *seed))

	section("Recovery sweep (§III-G, extension)")
	table(harness.RecoverySweep("Silo", "Hash", 2, *txns, *seed, nil))

	fmt.Fprintln(w, "\n---\nAll tables regenerated from live simulation; see EXPERIMENTS.md for the paper-vs-measured analysis.")
}

// tortureReport summarizes a JSONL checkpoint stream. Exit codes: 0 a
// readable stream with zero durability failures; 1 failures on record,
// or the stream is unreadable (missing, empty, or corrupt mid-file).
func tortureReport(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-report:", err)
		return 1
	}
	defer f.Close()
	s, err := harness.LoadCheckpoint(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "silo-report: %s: %v\n", path, err)
		return 1
	}
	fmt.Print(s.String())
	fmt.Print(s.Table().String())
	if len(s.Failures) > 0 {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-report:", err)
	os.Exit(1)
}
