// Command silo-report runs the full evaluation suite and emits a single
// self-contained Markdown report — every paper table/figure plus the
// extension studies — suitable for committing next to EXPERIMENTS.md or
// attaching to a regression ticket.
//
// Usage:
//
//	silo-report -txns 1250 -o report.md
//
// With -torture it instead summarizes a torture/cluster sweep
// checkpoint (as written by silo-torture/silo-cluster -out), JSONL or
// binary .srs store by extension. The loader is strict: an empty
// stream or a corrupt record mid-file is a clear error and a nonzero
// exit; only an interrupted writer's artifact — a torn final JSONL
// line, or a store's recoverable sealed prefix — is tolerated, and
// called out:
//
//	silo-report -torture sweep.jsonl
//	silo-report -torture sweep.srs
//
// A .srs store is opened read-only via mmap and summarized from its
// fixed-size index rows alone; -design/-workload/-failed-only switch
// to a query listing, still without deserializing any payload:
//
//	silo-report -torture sweep.srs -design Silo -failed-only
//
// -convert migrates an existing JSONL checkpoint into a store (the
// output path is the positional argument, default the input with a
// .srs extension); summaries over either format are byte-identical:
//
//	silo-report -convert sweep.jsonl sweep.srs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/explore"
	"silo/internal/harness"
	"silo/internal/resultstore"
	"silo/internal/stats"
)

func main() {
	var (
		txns    = flag.Int("txns", 600, "transactions per core (grid) / total (others)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		out     = flag.String("o", "", "output file (default stdout)")
		torture = flag.String("torture", "", "summarize this torture/cluster checkpoint (.srs store or JSONL) instead of running the suite")
		convert = flag.String("convert", "", "convert this JSONL checkpoint to a binary .srs store (output = positional arg, default input with .srs)")

		design     = flag.String("design", "", "with -torture on a .srs store: list only campaigns of this design")
		workload   = flag.String("workload", "", "with -torture on a .srs store: list only campaigns of this workload")
		failedOnly = flag.Bool("failed-only", false, "with -torture on a .srs store: list only campaigns with a durability failure")

		merge  = flag.String("merge", "", "merge/compact the positional .srs stores into this store (latest record per campaign index wins, ascending index order)")
		pareto = flag.Bool("pareto", false, "render the Pareto frontier of the positional explorer checkpoints (.srs or JSONL; see silo-explore)")
	)
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-report", showVersion)

	if *convert != "" {
		os.Exit(convertMode(*convert, flag.Arg(0)))
	}
	if *merge != "" {
		os.Exit(mergeMode(*merge, flag.Args()))
	}
	if *pareto {
		os.Exit(paretoMode(flag.Args()))
	}
	if *torture != "" {
		filter := resultstore.Filter{Design: *design, Workload: *workload, FailedOnly: *failedOnly}
		os.Exit(tortureReport(*torture, filter))
	}
	if *design != "" || *workload != "" || *failedOnly {
		fmt.Fprintln(os.Stderr, "silo-report: -design/-workload/-failed-only require -torture with a .srs store")
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	section := func(title string) {
		fmt.Fprintf(w, "\n## %s\n\n", title)
	}
	table := func(t *stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "```\n%s```\n", t)
	}

	fmt.Fprintf(w, "# Silo reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s · seed %d · %d txns/core (grid)\n",
		time.Now().UTC().Format(time.RFC3339), *seed, *txns)

	section("System configuration (Table II)")
	table(harness.ConfigTable(), nil)
	section("Hardware overhead (Table I)")
	table(harness.Table1(0, 8), nil)
	section("Battery requirements (Table IV)")
	table(harness.Table4(8, 0), nil)

	section("Write size per transaction (Fig. 4)")
	table(harness.Fig4(*txns, *seed))

	section("Write traffic and throughput (Figs. 11–12)")
	coresList := []int{1, 8}
	fmt.Fprintln(os.Stderr, "silo-report: running the design×workload grid...")
	grid, err := harness.Grid(coresList, *txns, *seed)
	if err != nil {
		fatal(err)
	}
	for _, t := range harness.Fig11(grid, coresList) {
		table(t, nil)
	}
	for _, t := range harness.Fig12(grid, coresList) {
		table(t, nil)
	}

	section("On-chip log reduction (Fig. 13)")
	table(harness.Fig13(*txns, *seed))

	section("Large transactions (Fig. 14)")
	thr, wr, err := harness.Fig14(4, *txns, *seed)
	if err != nil {
		fatal(err)
	}
	table(thr, nil)
	table(wr, nil)

	section("Log buffer latency (Fig. 15)")
	table(harness.Fig15(4, *txns, *seed, nil))

	section("Ordering constraints (§II-D, extension)")
	table(harness.Ordering("Btree", 2, *txns, *seed))

	section("Commit latency distributions (extension)")
	table(harness.Latency("Btree", 2, *txns, *seed))

	section("Execution timeline (telemetry extension)")
	sampler, _, err := harness.Timeline(harness.Spec{
		Design: "Silo", Workload: "Btree", Cores: 2, Txns: *txns, Seed: *seed,
		DisableAudit: true,
	}, 20_000)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "Silo on Btree, 2 cores, 20 k-cycle windows — where commits, evictions,\noverflows and WPQ pressure landed inside the run:\n\n")
	fmt.Fprintf(w, "```\n%s```\n", sampler.Table())

	section("eADR software logging (§II-C, extension)")
	table(harness.EADRStudy("YCSB", 2, *txns, *seed))

	section("Recovery sweep (§III-G, extension)")
	table(harness.RecoverySweep("Silo", "Hash", 2, *txns, *seed, nil))

	fmt.Fprintln(w, "\n---\nAll tables regenerated from live simulation; see EXPERIMENTS.md for the paper-vs-measured analysis.")
}

// tortureReport summarizes a checkpoint — JSONL stream or .srs binary
// store by extension. Exit codes: 0 a readable checkpoint with zero
// durability failures; 1 failures on record, or the checkpoint is
// unreadable (missing, empty, or corrupt mid-file). A non-zero Filter
// switches to the index-only query listing (stores only).
func tortureReport(path string, filter resultstore.Filter) int {
	if filter != (resultstore.Filter{}) {
		return queryStore(path, filter)
	}
	s, err := harness.SummarizeCheckpoint(path)
	if err != nil {
		// Store-layer errors already name the file; only prefix the
		// path for loaders (JSONL) whose errors don't.
		msg := err.Error()
		if !strings.Contains(msg, path) {
			msg = path + ": " + msg
		}
		fmt.Fprintf(os.Stderr, "silo-report: %s\n", msg)
		return 1
	}
	fmt.Print(s.String())
	fmt.Print(s.Table().String())
	if len(s.Failures) > 0 {
		return 1
	}
	return 0
}

// queryStore lists a store's campaigns matching the filter from the
// fixed-size index rows alone — no payload is ever deserialized, so a
// filtered listing over a 100k-campaign store touches only the mmap'd
// index section. Exit codes: 0 listed (even zero matches); 1 the store
// is unreadable; 2 the path is not a .srs store.
func queryStore(path string, filter resultstore.Filter) int {
	if !harness.IsStorePath(path) {
		fmt.Fprintf(os.Stderr, "silo-report: %s: -design/-workload/-failed-only need a .srs store (convert JSONL first: silo-report -convert %s)\n", path, path)
		return 2
	}
	st, err := resultstore.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-report:", err)
		return 1
	}
	defer st.Close()
	matched := 0
	st.Scan(filter, func(_ int, r resultstore.Row) bool {
		matched++
		line := fmt.Sprintf("campaign %d: %s/%s seed=%d %s commits=%d attempts=%d",
			r.Index, r.Design, r.Workload, r.Seed, r.Kind, r.Commits, r.Attempts)
		if r.Kind == resultstore.KindMismatch {
			line += fmt.Sprintf(" mismatches=%d invariant=%q", r.Mismatches, r.Invariant)
		}
		if r.HasTrace() {
			line += " trace=embedded"
		}
		fmt.Println(line)
		return true
	})
	var parts []string
	if filter.Design != "" {
		parts = append(parts, "design="+filter.Design)
	}
	if filter.Workload != "" {
		parts = append(parts, "workload="+filter.Workload)
	}
	if filter.FailedOnly {
		parts = append(parts, "failed-only")
	}
	fmt.Printf("%d/%d campaigns matched [%s]\n", matched, st.Count(), strings.Join(parts, " "))
	return 0
}

// convertMode migrates a JSONL checkpoint to a binary store. The
// output path defaults to the input with a .srs extension. Exit codes:
// 0 converted; 1 the input is unreadable or the write failed; 2 bad
// arguments.
func convertMode(in, out string) int {
	if out == "" {
		out = strings.TrimSuffix(in, ".jsonl") + ".srs"
	}
	if !harness.IsStorePath(out) {
		fmt.Fprintf(os.Stderr, "silo-report: -convert output %q must have a .srs extension\n", out)
		return 2
	}
	f, err := os.Open(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-report:", err)
		return 1
	}
	defer f.Close()
	n, tornTail, err := harness.ConvertJSONL(f, out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "silo-report: convert %s: %v\n", in, err)
		return 1
	}
	fmt.Printf("converted %d campaigns: %s -> %s\n", n, in, out)
	if tornTail {
		fmt.Println("note: input ended in a torn partial record (interrupted writer); the torn tail was dropped and the store sealed complete")
	}
	return 0
}

// mergeMode folds the source stores into one compacted store (see
// harness.MergeStores): silo-report -merge merged.srs shard-0.srs ...
func mergeMode(out string, srcs []string) int {
	if !harness.IsStorePath(out) {
		fmt.Fprintf(os.Stderr, "silo-report: -merge output %q must have a .srs extension\n", out)
		return 2
	}
	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "silo-report: -merge needs at least one source store as a positional argument")
		return 2
	}
	n, err := harness.MergeStores(out, srcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-report:", err)
		return 1
	}
	fmt.Printf("merged %d campaigns from %d stores into %s\n", n, len(srcs), out)
	return 0
}

// paretoMode loads explorer checkpoints and renders their Pareto
// frontier (throughput vs media writes vs crash-flush energy).
func paretoMode(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "silo-report: -pareto needs at least one explorer checkpoint as a positional argument")
		return 2
	}
	byIndex := make(map[int]harness.Record)
	for _, p := range paths {
		recs, err := harness.LoadRecords(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silo-report: %s: %v\n", p, err)
			return 1
		}
		for i, r := range recs {
			byIndex[i] = r
		}
	}
	idxs := make([]int, 0, len(byIndex))
	for i := range byIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	recs := make([]harness.Record, 0, len(idxs))
	for _, i := range idxs {
		recs = append(recs, byIndex[i])
	}
	fmt.Print(explore.Report(recs))
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-report:", err)
	os.Exit(1)
}
