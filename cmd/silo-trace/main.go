// Command silo-trace records a simulation's memory-operation trace to a
// file, or replays a recorded trace under any logging design — pinning
// the instruction streams while only the design varies.
//
// Usage:
//
//	silo-trace -record btree.trace -workload Btree -cores 2 -txns 2000
//	silo-trace -replay btree.trace -design LAD -workload Btree -cores 2
//
// Replay rebuilds the workload's initial PM state with the same seed the
// trace was recorded with, so loads and old-data captures see the bytes
// the recording saw.
package main

import (
	"flag"
	"fmt"
	"os"

	"silo/internal/buildinfo"
	"silo/internal/harness"
	"silo/internal/trace"
)

func main() {
	var (
		record = flag.String("record", "", "record a trace to this file")
		replay = flag.String("replay", "", "replay the trace in this file")
		design = flag.String("design", "Silo", "design under test")
		wl     = flag.String("workload", "Btree", "workload (Setup source; must match the recording for replays)")
		cores  = flag.Int("cores", 1, "simulated cores")
		txns   = flag.Int("txns", 2000, "total transactions (recording only)")
		seed   = flag.Int64("seed", 42, "seed (must match the recording for replays)")
	)
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-trace", showVersion)

	switch {
	case *record != "" && *replay != "":
		fatal(fmt.Errorf("choose one of -record and -replay"))
	case *record != "":
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		w := trace.NewWriter(f)
		r, err := harness.Run(harness.Spec{
			Design: *design, Workload: *wl, Cores: *cores, Txns: *txns,
			Seed: *seed, Trace: w,
		})
		if err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d ops (%d transactions) to %s\n", w.Ops(), r.Transactions, *record)
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		r, err := harness.ReplayRun(harness.Spec{
			Design: *design, Workload: *wl, Cores: *cores, Seed: *seed,
		}, tr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d ops (%d cores) under %s:\n", tr.Ops(), tr.Cores(), *design)
		fmt.Printf("  cycles=%d throughput=%.1f tx/Mcy mediaWrites=%d wpqWrites=%d\n",
			r.Cycles, r.Throughput(), r.MediaWrites, r.WPQWrites)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-trace:", err)
	os.Exit(1)
}
