// Command silo-serve hosts the live simulation dashboard: an HTTP
// server that starts sim and cluster runs on demand from parameter
// presets, streams their telemetry over Server-Sent Events, exposes a
// Prometheus-text /metrics endpoint, and accepts mid-run crash
// injection ("pull the plug") through the API.
//
// Usage:
//
//	silo-serve                 # listen on :8777
//	silo-serve -addr :9000
//
// Then open http://localhost:8777/ for the dashboard, or drive the API
// directly:
//
//	curl -X POST localhost:8777/api/runs -d '{"preset":"silo-btree"}'
//	curl -N localhost:8777/api/runs/1/events
//	curl -X POST localhost:8777/api/runs/1/crash
//	curl localhost:8777/metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"silo/internal/buildinfo"
	"silo/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8777", "listen address")
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-serve", showVersion)

	srv := serve.NewServer()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "silo-serve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "silo-serve: %v\n", err)
		os.Exit(1)
	}
}
