// Command silo-bench regenerates every table and figure of the paper's
// evaluation section (§VI) as text tables.
//
// Usage:
//
//	silo-bench -exp all                 # everything (slow)
//	silo-bench -exp fig11 -txns 1250    # one experiment
//
// Experiments: config (Table II), table1, table4, fig4, fig11, fig12,
// fig13, fig14, fig15. For fig11/fig12, -txns is the per-core transaction
// count (weak scaling, so 1250 × 8 cores reproduces the paper's 10 k).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"silo/internal/buildinfo"
	"silo/internal/harness"
	"silo/internal/profiling"
	"silo/internal/stats"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: config, table1, table4, fig4, fig11, fig12, fig13, fig14, fig15, ordering, latency, eadr, hotspot, recovery, bench, all")
		txns     = flag.Int("txns", 1250, "transactions per core (grid experiments) / total (others)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		cores    = flag.String("cores", "1,2,4,8", "core counts for fig11/fig12")
		fcors    = flag.Int("fig-cores", 8, "core count for fig14/fig15")
		format   = flag.String("format", "table", "output format: table, chart, csv, json")
		benchOut = flag.String("bench-out", "", "with -exp bench: write the machine-readable snapshot (BENCH_silo.json) here")
	)
	prof = profiling.Register("silo-bench")
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-bench", showVersion)

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	coresList, err := parseCores(*cores)
	if err != nil {
		fatal(err)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	printed := false
	show := func(t *stats.Table) {
		printed = true
		switch *format {
		case "chart":
			fmt.Println(t.BarChart(48))
		case "csv":
			if err := t.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		case "json":
			if err := t.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			fmt.Println(t)
		}
	}

	if want("config") {
		show(harness.ConfigTable())
	}
	if want("table1") {
		show(harness.Table1(0, 8))
	}
	if want("table4") {
		show(harness.Table4(8, 0))
	}
	if want("fig4") {
		t, err := harness.Fig4(*txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("fig11") || want("fig12") {
		fmt.Fprintf(os.Stderr, "running %d-run grid (designs × workloads × cores)...\n",
			len(harness.DesignNames())*len(harness.WorkloadNames())*len(coresList))
		grid, err := harness.Grid(coresList, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		if want("fig11") {
			for _, t := range harness.Fig11(grid, coresList) {
				show(t)
			}
		}
		if want("fig12") {
			for _, t := range harness.Fig12(grid, coresList) {
				show(t)
			}
		}
	}
	if want("fig13") {
		t, err := harness.Fig13(*txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("fig14") {
		thr, wr, err := harness.Fig14(*fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(thr)
		show(wr)
	}
	if want("fig15") {
		t, err := harness.Fig15(*fcors, *txns, *seed, nil)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("ordering") {
		t, err := harness.Ordering("Btree", *fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("latency") {
		t, err := harness.Latency("Btree", *fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("eadr") {
		t, err := harness.EADRStudy("YCSB", *fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if want("hotspot") {
		t, err := harness.Hotspot("Btree", *fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if *exp == "bench" {
		// The perf snapshot is not part of -exp all: it is the committed
		// BENCH_silo.json trend artifact, regenerated deliberately.
		rep, err := harness.Bench(*fcors, *txns, *seed)
		if err != nil {
			fatal(err)
		}
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "silo-bench: snapshot written to %s\n", *benchOut)
		}
		show(rep.Table())
	}
	if want("recovery") {
		t, err := harness.RecoverySweep("Silo", "Hash", 2, *txns, *seed, nil)
		if err != nil {
			fatal(err)
		}
		show(t)
	}
	if !printed {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "silo-bench:", err)
	prof.Stop()
	os.Exit(1)
}
