// Command silo-recover demonstrates crash recovery: it runs a workload,
// injects a power failure mid-run, performs the design's battery/ADR
// crash flush (Silo's selective log flushing, §III-G), recovers the PM
// data region from the log region, and verifies atomic durability against
// a golden committed-state shadow.
//
// Usage:
//
//	silo-recover -design Silo -workload Btree -cores 2 -crash-at 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"silo"
	"silo/internal/buildinfo"
	"silo/internal/harness"
)

func main() {
	var (
		design  = flag.String("design", "Silo", "design under test")
		wl      = flag.String("workload", "Btree", "workload")
		cores   = flag.Int("cores", 2, "simulated cores")
		txns    = flag.Int("txns", 5000, "transaction target (the crash usually hits first)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		crashAt = flag.Int64("crash-at", 20000, "operation count at which the power fails")
		scan    = flag.Int64("scan", 0, "instead of one crash, scan every Nth operation index (try 101)")
	)
	showVersion := buildinfo.Flag()
	flag.Parse()
	buildinfo.Handle("silo-recover", showVersion)

	if *scan > 0 {
		points, failures, err := harness.CrashScan(harness.Spec{
			Design: *design, Workload: *wl, Cores: *cores, Txns: *txns, Seed: *seed,
		}, *scan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silo-recover:", err)
			os.Exit(1)
		}
		fmt.Printf("crash scan: %s on %s, %d crash points (stride %d)\n", *design, *wl, points, *scan)
		if len(failures) == 0 {
			fmt.Println("atomic durability HELD at every crash point")
			return
		}
		fmt.Printf("VIOLATIONS at %d points:\n", len(failures))
		for _, f := range failures {
			fmt.Println(" ", f)
		}
		os.Exit(1)
	}

	rep, err := silo.RunWithCrash(silo.Config{
		Design:       *design,
		Workload:     *wl,
		Cores:        *cores,
		Transactions: *txns,
		Seed:         *seed,
	}, *crashAt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silo-recover:", err)
		os.Exit(1)
	}

	fmt.Printf("power failure injected at operation %d (%s on %s, %d cores)\n",
		*crashAt, *design, *wl, *cores)
	fmt.Printf("  committed before crash : %d transactions\n", rep.CommittedBeforeCrash)
	fmt.Printf("  recovery: %d committed tx found via ID tuples, %d redo replayed, %d undo revoked\n",
		rep.RecoveredTx, rep.RedoApplied, rep.UndoApplied)
	fmt.Printf("  verification: %d transactional words checked\n", rep.WordsChecked)
	if rep.Ok() {
		fmt.Println("  atomic durability HELD: all committed updates present, no partial updates")
		return
	}
	fmt.Printf("  atomic durability VIOLATED: %d mismatches\n", len(rep.Mismatches))
	for i, m := range rep.Mismatches {
		if i == 10 {
			fmt.Println("    ...")
			break
		}
		fmt.Println("   ", m)
	}
	os.Exit(1)
}
