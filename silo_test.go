package silo

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestRunAPI(t *testing.T) {
	r, err := Run(Config{Design: "Silo", Workload: "Btree", Cores: 2, Transactions: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != 200 {
		t.Errorf("transactions = %d", r.Transactions)
	}
	if len(Designs()) != 5 || len(Workloads()) != 7 {
		t.Error("registry lists wrong")
	}
	if _, err := Run(Config{Design: "X", Workload: "Btree"}); err == nil {
		t.Error("bad design accepted")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	r, err := Run(Config{Design: "Silo", Workload: "Queue"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions == 0 || r.Cores != 1 {
		t.Errorf("defaults not applied: %+v", r)
	}
}

func TestSameSeedSameRun(t *testing.T) {
	cfg := Config{Design: "MorLog", Workload: "YCSB", Cores: 2, Transactions: 300, Seed: 17}
	a, _ := Run(cfg)
	b, _ := Run(cfg)
	if a != b {
		t.Error("same seed produced different runs")
	}
}

// TestAtomicDurabilityAllDesigns is the central correctness property of
// the reproduction: for every design, workload and crash point, the
// recovered PM data region contains exactly the committed transactions'
// updates — all of them, and nothing from uncommitted transactions.
func TestAtomicDurabilityAllDesigns(t *testing.T) {
	crashPoints := []int64{120, 900, 4321, 17000}
	for _, d := range ExtendedDesigns() {
		for _, wl := range []string{"Btree", "Hash", "Queue"} {
			for _, at := range crashPoints {
				d, wl, at := d, wl, at
				t.Run(fmt.Sprintf("%s/%s/op%d", d, wl, at), func(t *testing.T) {
					rep, err := RunWithCrash(Config{
						Design: d, Workload: wl, Cores: 2, Transactions: 1200, Seed: 99,
					}, at)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Ok() {
						t.Fatalf("atomic durability violated (%d mismatches, committed=%d): %v",
							len(rep.Mismatches), rep.CommittedBeforeCrash, firstN(rep.Mismatches, 3))
					}
					if at > 1000 && rep.WordsChecked == 0 {
						t.Error("verification checked nothing")
					}
				})
			}
		}
	}
}

// TestAtomicDurabilityRandomizedSilo fuzzes crash points and seeds on the
// Silo design specifically, including multi-op transactions that overflow
// the log buffer.
func TestAtomicDurabilityRandomizedSilo(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	n := 25
	if testing.Short() {
		n = 6
	}
	for i := 0; i < n; i++ {
		seed := rng.Int63n(1 << 30)
		at := rng.Int63n(30000) + 10
		ops := 1 + rng.Intn(4) // up to ~4x write sets: overflow exercised
		wl := []string{"Btree", "Hash", "Queue", "RBtree", "Array", "TPCC",
			"HashMix", "RBtreeMix", "BPtree", "LevelHash"}[rng.Intn(10)]
		cores := 1 + rng.Intn(3)
		rep, err := RunWithCrash(Config{
			Design: "Silo", Workload: wl, Cores: cores,
			Transactions: 2000, Seed: seed, OpsPerTx: ops,
		}, at)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("case %d (wl=%s seed=%d at=%d ops=%d cores=%d): %d mismatches: %v",
				i, wl, seed, at, ops, cores, len(rep.Mismatches), firstN(rep.Mismatches, 3))
		}
	}
}

// TestAtomicDurabilitySiloAblations: correctness must hold with every
// ablation switch (the switches trade performance, never safety).
func TestAtomicDurabilitySiloAblations(t *testing.T) {
	opts := []SiloOptions{
		{DisableMerge: true},
		{DisableIgnore: true},
		{SingleEntryOverflow: true},
		{DisableMerge: true, DisableIgnore: true, SingleEntryOverflow: true},
	}
	for i, o := range opts {
		for _, at := range []int64{500, 6000} {
			rep, err := RunWithCrash(Config{
				Design: "Silo", Workload: "Hash", Cores: 2,
				Transactions: 1500, Seed: 7, OpsPerTx: 3, Silo: o,
			}, at)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Errorf("ablation %d at op %d: %v", i, at, firstN(rep.Mismatches, 3))
			}
		}
	}
}

// TestCrashDuringOverflowHeavyRun drives write sets far beyond the log
// buffer (§III-F path) and crashes mid-stream.
func TestCrashDuringOverflowHeavyRun(t *testing.T) {
	for _, at := range []int64{300, 2500, 9000} {
		rep, err := RunWithCrash(Config{
			Design: "Silo", Workload: "Sweep160", Cores: 1,
			Transactions: 300, Seed: 5,
		}, at)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("overflow crash at %d: %v", at, firstN(rep.Mismatches, 3))
		}
	}
}

// TestCrashAfterCompletionIsNoop: crashing after the workload finished
// must find everything durable with no recovery work for Silo beyond
// possibly the final pending transaction.
func TestCrashAfterCompletion(t *testing.T) {
	rep, err := RunWithCrash(Config{
		Design: "Silo", Workload: "Bank", Cores: 1, Transactions: 100, Seed: 1,
	}, 1<<40) // never fires
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommittedBeforeCrash != 100 {
		t.Errorf("committed = %d", rep.CommittedBeforeCrash)
	}
	if !rep.Ok() {
		t.Errorf("clean completion not durable: %v", firstN(rep.Mismatches, 3))
	}
}

// TestPaperHeadlineShape asserts the qualitative result of Figs. 11–12 at
// the API level: Silo beats every baseline on throughput and ties-or-beats
// LAD on media writes, on a representative workload.
func TestPaperHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design comparison is slow")
	}
	results := map[string]Result{}
	for _, d := range Designs() {
		r, err := Run(Config{Design: d, Workload: "Btree", Cores: 4, Transactions: 2000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		results[d] = r
	}
	order := []string{"Base", "FWB", "MorLog", "LAD", "Silo"}
	for i := 0; i+1 < len(order); i++ {
		lo, hi := results[order[i]], results[order[i+1]]
		if hi.Throughput() <= lo.Throughput() {
			t.Errorf("throughput order violated: %s (%.1f) >= %s (%.1f)",
				order[i], lo.Throughput(), order[i+1], hi.Throughput())
		}
	}
	if results["Silo"].MediaWrites >= results["MorLog"].MediaWrites {
		t.Error("Silo should write less than MorLog")
	}
}

func firstN(s []string, n int) []string {
	if len(s) < n {
		return s
	}
	return s[:n]
}

// TestRecordReplayPublicAPI: the public trace API reproduces a run
// bit-exactly under the recording design.
func TestRecordReplayPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Design: "Silo", Workload: "Queue", Cores: 2, Transactions: 400, Seed: 9}
	orig, err := RecordTrace(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != orig.Cycles || rep.MediaWrites != orig.MediaWrites || rep.Transactions != orig.Transactions {
		t.Errorf("replay diverged: cycles %d/%d media %d/%d",
			rep.Cycles, orig.Cycles, rep.MediaWrites, orig.MediaWrites)
	}
	// Replay under a different design keeps the op stream.
	cfg.Design = "LAD"
	lad, err := Replay(cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lad.Stores != orig.Stores {
		t.Error("cross-design replay changed the op stream")
	}
	// Malformed traces are rejected.
	if _, err := Replay(cfg, bytes.NewReader([]byte("garbage\n"))); err == nil {
		t.Error("garbage trace accepted")
	}
}

// TestPMLifetimeMonotone: more media bytes at equal time = shorter life.
func TestPMLifetimeMonotone(t *testing.T) {
	a := Result{MediaBytes: 1 << 20, Cycles: 1 << 30}
	b := Result{MediaBytes: 4 << 20, Cycles: 1 << 30}
	if PMLifetimeYears(a) <= PMLifetimeYears(b) {
		t.Error("lifetime not monotone in write volume")
	}
}
