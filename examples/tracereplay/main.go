// Trace replay: record one Btree run's exact memory-operation stream,
// then replay the identical instructions under every logging design —
// the same-trace methodology the paper's gem5 evaluation uses, so the
// comparison isolates the design from workload randomness.
package main

import (
	"bytes"
	"fmt"
	"log"

	"silo"
)

func main() {
	cfg := silo.Config{
		Design:       "Silo",
		Workload:     "Btree",
		Cores:        2,
		Transactions: 3000,
		Seed:         21,
	}

	var buf bytes.Buffer
	orig, err := silo.RecordTrace(cfg, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d loads + %d stores across %d transactions (%d KB trace)\n\n",
		orig.Loads, orig.Stores, orig.Transactions, buf.Len()>>10)

	fmt.Printf("  %-7s %14s %14s %12s\n", "design", "cycles", "media writes", "tx/Mcycle")
	traceBytes := buf.Bytes()
	for _, d := range silo.Designs() {
		c := cfg
		c.Design = d
		r, err := silo.Replay(c, bytes.NewReader(traceBytes))
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if d == "Silo" && r.Cycles == orig.Cycles {
			marker = "  <- bit-exact with the recording"
		}
		fmt.Printf("  %-7s %14d %14d %12.1f%s\n", d, r.Cycles, r.MediaWrites, r.Throughput(), marker)
	}
	fmt.Println("\nIdentical instruction streams; only the atomic-durability hardware differs.")
}
