// Quickstart: run one workload under Silo and under the conventional
// hardware-logging baseline, and compare throughput and PM write traffic —
// the paper's headline claims in ~30 lines.
package main

import (
	"fmt"
	"log"

	"silo"
)

func main() {
	cfg := silo.Config{
		Workload:     "Btree",
		Cores:        4,
		Transactions: 8000,
		Seed:         1,
	}

	cfg.Design = "Silo"
	fast, err := silo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Design = "Base"
	base, err := silo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, %d cores, %d transactions\n", cfg.Workload, cfg.Cores, cfg.Transactions)
	fmt.Printf("  %-6s  %12s  %14s\n", "design", "tx/M-cycles", "media writes")
	fmt.Printf("  %-6s  %12.1f  %14d\n", "Base", base.Throughput(), base.MediaWrites)
	fmt.Printf("  %-6s  %12.1f  %14d\n", "Silo", fast.Throughput(), fast.MediaWrites)
	fmt.Printf("Silo: %.1fx the throughput, %.1f%% fewer PM media writes\n",
		fast.Throughput()/base.Throughput(),
		100*(1-float64(fast.MediaWrites)/float64(base.MediaWrites)))
}
