// Scaling: run TPCC New-Order under Silo and LAD on 1–8 cores and show
// how removing commit-path ordering constraints (no waiting for cacheline
// flushes) lets Silo scale — the §VI-C comparison.
package main

import (
	"fmt"
	"log"

	"silo"
)

func main() {
	const perCore = 1500
	fmt.Println("TPCC New-Order, weak scaling (1500 tx/core)")
	fmt.Printf("  %-5s %16s %16s %8s\n", "cores", "Silo tx/Mcy", "LAD tx/Mcy", "ratio")
	for _, cores := range []int{1, 2, 4, 8} {
		var thr [2]float64
		for i, d := range []string{"Silo", "LAD"} {
			r, err := silo.Run(silo.Config{
				Design: d, Workload: "TPCC", Cores: cores,
				Transactions: perCore * cores, Seed: 11,
			})
			if err != nil {
				log.Fatal(err)
			}
			thr[i] = r.Throughput()
		}
		fmt.Printf("  %-5d %16.1f %16.1f %7.2fx\n", cores, thr[0], thr[1], thr[0]/thr[1])
	}
	fmt.Println("\nSilo commits with an on-chip ACK; LAD stalls flushing dirty L1 lines to the MC.")
}
