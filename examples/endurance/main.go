// Endurance: compare PM media write traffic across all five designs on a
// write-heavy key-value workload, and translate it into relative PM
// lifetime — the paper's Fig. 11 motivation (write endurance) made
// concrete.
package main

import (
	"fmt"
	"log"

	"silo"
)

func main() {
	const (
		cores = 8
		txns  = 8000
	)
	fmt.Printf("YCSB (20%% read / 80%% update), %d cores, %d transactions\n\n", cores, txns)
	fmt.Printf("  %-7s %14s %14s %12s %14s\n",
		"design", "media writes", "media bytes", "rel. life", "est. years*")

	var baseWrites int64
	for _, d := range silo.Designs() {
		r, err := silo.Run(silo.Config{
			Design: d, Workload: "YCSB", Cores: cores, Transactions: txns, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d == "Base" {
			baseWrites = r.MediaWrites
		}
		// Compare at a fixed service rate (1 M tx/s) so slower designs do
		// not look longer-lived just by doing less work per second.
		const txPerSec = 1e6
		bytesPerTx := float64(r.MediaBytes) / float64(r.Transactions)
		budget := 16e9 * 1e8 * 0.9 // capacity × cell endurance × leveling
		years := budget / (bytesPerTx * txPerSec) / (365.25 * 24 * 3600)
		fmt.Printf("  %-7s %14d %14d %11.2fx %14.1f\n",
			d, r.MediaWrites, r.MediaBytes,
			float64(baseWrites)/float64(r.MediaWrites), years)
	}
	fmt.Println("\n* 16 GB PCM DIMM, 1e8-cycle cells, 90% wear leveling, serving 1M tx/s 24/7.")
	fmt.Println("PM cells wear out per write; fewer media writes = proportionally longer DIMM life.")
}
