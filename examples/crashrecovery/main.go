// Crash recovery walk-through: inject power failures at increasing points
// of a two-thread run (the Fig. 10 scenario shape: in-flight transactions,
// committed-but-unflushed transactions, and log overflow all occur) and
// show Silo's selective log flushing plus recovery restoring atomic
// durability every time.
package main

import (
	"fmt"
	"log"

	"silo"
)

func main() {
	cfg := silo.Config{
		Design:       "Silo",
		Workload:     "Hash",
		Cores:        2,
		Transactions: 4000,
		Seed:         7,
		// Three hash inserts per transaction: large enough write sets to
		// exercise the log-overflow path (§III-F) alongside the crash.
		OpsPerTx: 3,
	}

	for _, crashAt := range []int64{1000, 5000, 20000, 60000} {
		rep, err := silo.RunWithCrash(cfg, crashAt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("power failure at op %-6d committed=%-4d ", crashAt, rep.CommittedBeforeCrash)
		fmt.Printf("recovery: %d ID tuples, %d redo replayed, %d undo revoked, %d words verified -> ",
			rep.RecoveredTx, rep.RedoApplied, rep.UndoApplied, rep.WordsChecked)
		if rep.Ok() {
			fmt.Println("atomic durability HELD")
		} else {
			fmt.Printf("VIOLATED (%d mismatches)\n", len(rep.Mismatches))
		}
	}
	fmt.Println()
	fmt.Println("Uncommitted transactions were revoked via crash-flushed undo logs;")
	fmt.Println("committed-but-unflushed ones were replayed via redo logs + ID tuples (§III-G).")
}
