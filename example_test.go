package silo_test

import (
	"fmt"

	"silo"
)

// The simplest use: run one workload under Silo and read the headline
// counters. Runs are deterministic for a fixed seed.
func ExampleRun() {
	res, err := silo.Run(silo.Config{
		Design:       "Silo",
		Workload:     "Queue",
		Cores:        1,
		Transactions: 100,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("transactions:", res.Transactions)
	fmt.Println("log region writes needed in the failure-free run:", res.LogEntriesFlushed)
	// Output:
	// transactions: 100
	// log region writes needed in the failure-free run: 0
}

// Injecting a power failure mid-run: Silo's battery flushes the selective
// logs (§III-G), recovery replays/revokes, and the report verifies atomic
// durability word by word.
func ExampleRunWithCrash() {
	rep, err := silo.RunWithCrash(silo.Config{
		Design:       "Silo",
		Workload:     "Bank",
		Cores:        1,
		Transactions: 200,
		Seed:         1,
	}, 500 /* the power fails at operation 500 */)
	if err != nil {
		panic(err)
	}
	fmt.Println("atomic durability held:", rep.Ok())
	fmt.Println("verified words > 0:", rep.WordsChecked > 0)
	// Output:
	// atomic durability held: true
	// verified words > 0: true
}

// Comparing designs on the same workload and seed.
func ExampleDesigns() {
	for _, d := range silo.Designs() {
		fmt.Println(d)
	}
	// Output:
	// Base
	// FWB
	// MorLog
	// LAD
	// Silo
}
