// Package silo is a reproduction of "Silo: Speculative Hardware Logging
// for Atomic Durability in Persistent Memory" (Zhang & Hua, HPCA 2023) as
// a pure-Go architectural simulator plus the Silo design itself and the
// four baselines the paper evaluates (Base, FWB, MorLog, LAD).
//
// The package is a thin facade over the internal simulator. A minimal use:
//
//	res, err := silo.Run(silo.Config{
//		Design:       "Silo",
//		Workload:     "Btree",
//		Cores:        8,
//		Transactions: 10000,
//	})
//	fmt.Printf("committed %d txns in %d cycles, %d media writes\n",
//		res.Transactions, res.Cycles, res.MediaWrites)
//
// Crash-recovery experiments go through RunWithCrash, which injects a
// power failure mid-run, performs Silo's battery-backed selective log
// flush (§III-G of the paper), runs recovery, and verifies the recovered
// PM data region against a golden committed-state shadow.
package silo

import (
	"fmt"
	"io"

	"silo/internal/core"
	"silo/internal/energy"
	"silo/internal/harness"
	"silo/internal/mem"
	"silo/internal/recovery"
	"silo/internal/sim"
	"silo/internal/stats"
	"silo/internal/trace"
)

// Result is the record of one simulation run: simulated cycles, committed
// transactions, PM traffic (WPQ and media levels), logging behaviour and
// cache statistics.
type Result = stats.Run

// Table is a rendered experiment table (fmt.Stringer).
type Table = stats.Table

// SiloOptions are the ablation switches of the Silo design.
type SiloOptions = core.Options

// Config describes one simulation run.
type Config struct {
	// Design is one of Designs(): "Base", "FWB", "MorLog", "LAD", "Silo".
	Design string
	// Workload is one of Workloads(), a TPCC variant ("TPCC",
	// "TPCC-Mix"), or "SweepN" for an N-word write-set workload.
	Workload string
	// Cores is the simulated core count (default 1).
	Cores int
	// Transactions is the total committed-transaction target, split
	// evenly across cores (default 1000).
	Transactions int
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// OpsPerTx repeats the workload operation inside each transaction
	// (default 1) — the Fig. 14 write-set knob.
	OpsPerTx int
	// LogBufferEntries overrides Silo's 20-entry per-core log buffer.
	LogBufferEntries int
	// LogBufferLatency overrides the 8-cycle buffer access latency.
	LogBufferLatency int
	// Silo carries the design's ablation switches.
	Silo SiloOptions
}

func (c Config) spec() harness.Spec {
	return harness.Spec{
		Design:        c.Design,
		Workload:      c.Workload,
		Cores:         c.Cores,
		Txns:          c.Transactions,
		Seed:          c.Seed,
		OpsPerTx:      c.OpsPerTx,
		LogBufEntries: c.LogBufferEntries,
		LogBufLatency: sim.Cycle(c.LogBufferLatency),
		SiloOpts:      c.Silo,
	}
}

// Designs lists the evaluated designs in the paper's order.
func Designs() []string { return harness.DesignNames() }

// ExtendedDesigns additionally includes the §II motivational schemes:
// software write-ahead logging ("SWLog") and the pure hardware undo/redo
// disciplines ("UndoHW", "RedoHW") whose ordering constraints Fig. 3
// illustrates.
func ExtendedDesigns() []string { return harness.ExtendedDesignNames() }

// Workloads lists the seven benchmarks used in Figs. 11–13.
func Workloads() []string { return harness.WorkloadNames() }

// Run executes one simulation to completion.
func Run(cfg Config) (Result, error) {
	return harness.Run(cfg.spec())
}

// RecordTrace runs cfg while recording every memory operation to w in the
// line-oriented trace format (see internal/trace); the trace can later be
// replayed under any design with Replay.
func RecordTrace(cfg Config, w io.Writer) (Result, error) {
	tw := trace.NewWriter(w)
	spec := cfg.spec()
	spec.Trace = tw
	res, err := harness.Run(spec)
	if err != nil {
		return res, err
	}
	return res, tw.Flush()
}

// Replay re-executes a recorded trace under cfg's design. cfg's Workload
// and Seed must match the recording (they rebuild the initial PM state);
// only the design and machine knobs may differ. Replaying under the
// recording design reproduces the original run bit-exactly.
func Replay(cfg Config, r io.Reader) (Result, error) {
	tr, err := trace.Read(r)
	if err != nil {
		return Result{}, err
	}
	return harness.ReplayRun(cfg.spec(), tr)
}

// PMLifetimeYears estimates how long a default 16 GB PCM DIMM (1e8-cycle
// cells, 90 % wear leveling) would last if the measured run's media write
// rate were sustained continuously — the endurance argument behind the
// paper's Fig. 11, as a single number.
func PMLifetimeYears(r Result) float64 {
	return energy.DefaultLifetimeParams().Years(r.MediaBytes, r.Cycles)
}

// CrashReport is the outcome of a crash-injection run.
type CrashReport struct {
	// CommittedBeforeCrash is the number of transactions that committed
	// before the power failure.
	CommittedBeforeCrash int64
	// RecoveredTx is the number of committed transactions recovery found
	// via ID tuples in the log region.
	RecoveredTx int
	// RedoApplied and UndoApplied count the log records replayed/revoked.
	RedoApplied, UndoApplied int
	// WordsChecked is the number of transactional words verified.
	WordsChecked int
	// Mismatches lists verification failures (empty on success).
	Mismatches []string
}

// Ok reports whether atomic durability held.
func (r CrashReport) Ok() bool { return len(r.Mismatches) == 0 }

// RunWithCrash injects a power failure when the machine has executed
// crashAtOp operations, performs the design's battery/ADR crash flush,
// drops the volatile caches, runs log recovery, and verifies every word
// any transaction ever wrote against the committed golden state.
func RunWithCrash(cfg Config, crashAtOp int64) (CrashReport, error) {
	spec := cfg.spec()
	spec.CrashAtOp = crashAtOp
	m, _, err := harness.RunMachine(spec)
	if err != nil {
		return CrashReport{}, err
	}
	if !m.Crashed() {
		// The workload finished before the crash point: power still goes
		// out eventually. Crash at completion so the verification below
		// always observes a post-power-failure machine.
		m.InjectCrash(m.Now())
	}
	rep := recovery.Recover(m.Device(), m.Region())
	out := CrashReport{
		CommittedBeforeCrash: m.Commits(),
		RecoveredTx:          rep.CommittedTx,
		RedoApplied:          rep.RedoApplied,
		UndoApplied:          rep.UndoApplied,
	}
	for _, addr := range m.WrittenWords() {
		want, ok := m.GoldenCommitted(addr)
		if !ok {
			continue
		}
		out.WordsChecked++
		if got := m.Device().PeekWord(addr); got != want {
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("%s: got %#x want %#x", mem.Addr(addr), uint64(got), uint64(want)))
		}
	}
	return out, nil
}
